"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``    -- baseline vs Skia on one workload (quickstart in a CLI).
``experiment`` -- regenerate one paper exhibit by name (fig1..fig18,
                  table1, table2, bolt, bogus, ablations).
``workloads``  -- list the calibrated workload profiles.
``describe``   -- generate a workload and print its static structure.
``stats``      -- per-component metric snapshots: dump one run
                  (``stats run``), compare two saved snapshots
                  (``stats diff``), or run the invariant cross-checks
                  over the Figure 14 grid (``stats check``).
"""

from __future__ import annotations

import argparse
import sys

from repro import quick_compare
from repro.harness import experiments
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import SCALES, current_scale
from repro.workloads.cache import build_program
from repro.workloads.profiles import PROFILES, WORKLOAD_NAMES

#: Exhibit name -> experiment callable taking (runner).
EXPERIMENTS = {
    "fig1": experiments.fig1_btb_miss_l1i_hit,
    "fig3": experiments.fig3_speedup_vs_btb_size,
    "fig6": experiments.fig6_miss_breakdown,
    "fig13": experiments.fig13_l1i_mpki,
    "fig14": experiments.fig14_ipc_gain,
    "fig15": experiments.fig15_btb_miss_l1i_hit,
    "fig16": experiments.fig16_mpki_reduction,
    "fig17": experiments.fig17_sbb_sensitivity,
    "fig18": experiments.fig18_decoder_idle,
    "bolt": experiments.verilator_bolt_comparison,
    "bogus": experiments.bogus_rate_audit,
    "ablation-index": experiments.ablation_index_policy,
    "ablation-paths": experiments.ablation_max_paths,
    "ablation-retired": experiments.ablation_retired_bit,
}


def _add_common_options(parser: argparse.ArgumentParser,
                        suppress: bool = False) -> None:
    """Options accepted both before and after the subcommand.

    Subcommand copies use ``SUPPRESS`` defaults so they only overwrite
    the top-level values when actually given on the command line.
    """
    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument("--scale", choices=sorted(SCALES),
                        default=default(None),
                        help="trace scale (overrides REPRO_SCALE)")
    parser.add_argument("--jobs", "-j", type=int, metavar="N",
                        default=default(1),
                        help="simulation worker processes (0 = all CPUs, "
                             "or set REPRO_JOBS; default 1 = serial)")
    parser.add_argument("--no-store", action="store_true",
                        default=default(False),
                        help="skip the persistent result store "
                             "(equivalent to REPRO_NO_STORE=1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skia (ASPLOS 2025) reproduction command line")
    _add_common_options(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare",
                             help="baseline vs Skia on one workload")
    compare.add_argument("workload", nargs="?", default="voter",
                         choices=sorted(WORKLOAD_NAMES))
    _add_common_options(compare, suppress=True)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper exhibit")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    # nargs="+" (not "*"): a bare --workloads used to parse as an empty
    # list, which the old truthiness guard silently dropped -- the
    # exhibit then ran the full set, and a filtered-to-nothing list
    # could reach geomean() as an empty ratio sequence.  Unknown names
    # are rejected here instead of failing deep inside trace generation.
    experiment.add_argument("--workloads", nargs="+", default=None,
                            metavar="NAME", choices=sorted(WORKLOAD_NAMES),
                            help="restrict to these workloads")
    _add_common_options(experiment, suppress=True)

    sub.add_parser("workloads", help="list workload profiles")

    describe = sub.add_parser("describe",
                              help="print a workload's static structure")
    describe.add_argument("workload", choices=sorted(PROFILES))

    tables = sub.add_parser("table", help="print a configuration table")
    tables.add_argument("which", choices=["1", "2"])

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from saved exhibits")
    report.add_argument("--results", default="benchmarks/bench_results")
    report.add_argument("--output", default="EXPERIMENTS.md")

    stats = sub.add_parser(
        "stats", help="metric snapshots and invariant cross-checks")
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)

    stats_run = stats_sub.add_parser(
        "run", help="simulate one cell and dump per-component counters")
    stats_run.add_argument("workload", choices=sorted(WORKLOAD_NAMES))
    stats_run.add_argument("--config", default="skia",
                           choices=["base", "skia", "head", "tail"],
                           help="configuration to simulate (default: skia)")
    stats_run.add_argument("--dump", metavar="PATH", default=None,
                           help="also save the snapshot as JSON")
    stats_run.add_argument("--trace-out", metavar="PATH", default=None,
                           help="write the structured event trace (JSONL)")
    stats_run.add_argument("--trace-capacity", type=int, default=65_536,
                           help="event ring-buffer size (default 65536)")
    _add_common_options(stats_run, suppress=True)

    stats_diff = stats_sub.add_parser(
        "diff", help="compare two saved metric snapshots")
    stats_diff.add_argument("before")
    stats_diff.add_argument("after")

    stats_check = stats_sub.add_parser(
        "check", help="invariant cross-checks over the Figure 14 grid")
    stats_check.add_argument("--workloads", nargs="+", default=None,
                             metavar="NAME",
                             choices=sorted(WORKLOAD_NAMES),
                             help="restrict to these workloads")
    _add_common_options(stats_check, suppress=True)

    trace = sub.add_parser("trace", help="dump or inspect binary traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    dump = trace_sub.add_parser("dump", help="generate and save a trace")
    dump.add_argument("workload", choices=sorted(PROFILES))
    dump.add_argument("path")
    dump.add_argument("--records", type=int, default=None,
                      help="record count (default: scale's records)")
    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("path")
    return parser


def _run_compare(args) -> int:
    scale = SCALES[args.scale] if args.scale else current_scale()
    result = quick_compare(args.workload, records=scale.records,
                           warmup=scale.warmup)
    print(result.render())
    return 0


def _run_experiment(args) -> int:
    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store)
    function = EXPERIMENTS[args.name]
    kwargs = {}
    if args.workloads is not None:
        kwargs["workloads"] = args.workloads
    if args.jobs != 1:
        # Fan the exhibit's whole grid out first; the exhibit function
        # then assembles its tables from memo hits.
        experiments.prefetch_exhibit(runner, args.name, jobs=args.jobs,
                                     **kwargs)
    result = function(runner, **kwargs)
    print(result["render"])
    return 0


def _run_workloads() -> int:
    for name in WORKLOAD_NAMES:
        profile = PROFILES[name]
        expected = profile.expected
        print(f"{name:18s} {profile.suite:12s} "
              f"paper gain {expected.ipc_gain_pct:5.1f}% "
              f"({expected.gain_class})")
    return 0


def _run_describe(args) -> int:
    program = build_program(args.workload)
    print(program.describe())
    return 0


def _run_table(args) -> int:
    if args.which == "1":
        print(experiments.table1_config()["render"])
    else:
        print(experiments.table2_benchmarks()["render"])
    return 0


def _stats_config(name: str):
    """The four Figure 14 grid configurations by short name."""
    from repro.frontend.config import FrontEndConfig, SkiaConfig

    if name == "base":
        return FrontEndConfig()
    heads = name in ("skia", "both", "head")
    tails = name in ("skia", "both", "tail")
    return FrontEndConfig(skia=SkiaConfig(decode_heads=heads,
                                          decode_tails=tails))


def _print_violations(violations, label: str) -> None:
    for violation in violations:
        print(f"INVARIANT VIOLATION [{label}] {violation}")


def _run_stats_run(args) -> int:
    from repro.frontend.engine import FrontEndSimulator
    from repro.obs import (EventTrace, applicable_invariants, check_snapshot,
                           render_snapshot, save_snapshot)
    from repro.workloads.cache import build_trace

    scale = SCALES[args.scale] if args.scale else current_scale()
    config = _stats_config(args.config)
    program = build_program(args.workload)
    records = build_trace(args.workload, scale.records)
    simulator = FrontEndSimulator(program, config)
    trace = None
    if args.trace_out:
        trace = EventTrace(capacity=args.trace_capacity)
        simulator.attach_trace(trace)
    simulator.run(records, warmup=scale.warmup)

    snapshot = simulator.metrics_snapshot()
    print(render_snapshot(
        snapshot,
        title=f"{args.workload} [{args.config}] @ {scale.name} scale"))
    if args.dump:
        save_snapshot(args.dump, snapshot,
                      meta={"workload": args.workload, "config": args.config,
                            "scale": scale.name})
        print(f"\nsnapshot saved to {args.dump}")
    if trace is not None:
        trace.to_jsonl(args.trace_out)
        print(f"trace: {trace.emitted} events emitted, {trace.dropped} "
              f"dropped -> {args.trace_out}")

    violations = check_snapshot(snapshot)
    if violations:
        _print_violations(violations, f"{args.workload}/{args.config}")
        return 1
    checked = len(applicable_invariants(snapshot))
    print(f"\ninvariants: {checked} checked, all passing")
    return 0


def _run_stats_diff(args) -> int:
    from repro.harness.reporting import format_table
    from repro.obs import diff_snapshots, load_snapshot

    before, _ = load_snapshot(args.before)
    after, _ = load_snapshot(args.after)
    changed = diff_snapshots(before, after)
    if not changed:
        print("snapshots are identical")
        return 0
    rows = []
    for key, (a, b) in changed.items():
        rows.append([key,
                     "-" if a is None else a,
                     "-" if b is None else b])
    print(format_table(["metric", args.before, args.after], rows))
    return 0


def _run_stats_check(args) -> int:
    from repro.harness.parallel import Cell
    from repro.obs import check_snapshot

    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store)
    # Parallel workers hand snapshots back through the store; without
    # one, run serially so snapshots stay in the in-memory memo.
    jobs = args.jobs if runner.store is not None else 1
    workloads = args.workloads or list(WORKLOAD_NAMES)
    configs = {name: _stats_config(name)
               for name in ("base", "head", "tail", "skia")}

    cells = [Cell(workload, config)
             for workload in workloads for config in configs.values()]
    runner.run_cells(cells, jobs=jobs)

    failures = 0
    unavailable = 0
    for workload in workloads:
        for name, config in configs.items():
            metrics = runner.metrics_for(workload, config)
            if metrics is None:
                print(f"no metric snapshot for {workload}/{name} "
                      f"(stale store entry? re-run without it)")
                unavailable += 1
                continue
            violations = check_snapshot(metrics)
            if violations:
                _print_violations(violations, f"{workload}/{name}")
                failures += 1
    checked = len(workloads) * len(configs)
    print(f"checked {checked} cells ({len(workloads)} workloads x "
          f"{len(configs)} configs) at {scale.name} scale: "
          f"{failures} failing, {unavailable} without snapshots")
    return 1 if failures or unavailable else 0


def _run_stats(args) -> int:
    if args.stats_command == "run":
        return _run_stats_run(args)
    if args.stats_command == "diff":
        return _run_stats_diff(args)
    return _run_stats_check(args)


def _run_trace(args) -> int:
    from repro.workloads.cache import build_trace
    from repro.workloads.traceio import save_trace, trace_info

    if args.trace_command == "dump":
        scale = SCALES[args.scale] if args.scale else current_scale()
        records = build_trace(args.workload,
                              args.records or scale.records)
        save_trace(records, args.path)
        print(f"wrote {len(records)} records to {args.path}")
        return 0
    info = trace_info(args.path)
    for key, value in sorted(info.items()):
        print(f"{key}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "workloads":
        return _run_workloads()
    if args.command == "describe":
        return _run_describe(args)
    if args.command == "table":
        return _run_table(args)
    if args.command == "report":
        from repro.harness.report import generate
        generate(results_dir=args.results, output=args.output)
        print(f"wrote {args.output}")
        return 0
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "trace":
        return _run_trace(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
