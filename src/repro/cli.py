"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``    -- baseline vs Skia on one workload (quickstart in a CLI).
``experiment`` -- regenerate one paper exhibit by name (fig1..fig18,
                  table1, table2, bolt, bogus, ablations,
                  comparator-zoo).
``workloads``  -- list the calibrated workload profiles.
``describe``   -- generate a workload and print its static structure.
``stats``      -- per-component metric snapshots: dump one run
                  (``stats run``), compare two saved snapshots
                  (``stats diff``), run the invariant cross-checks
                  over the Figure 14 grid (``stats check``), or inspect/
                  convert a saved event trace (``stats trace``).
``attrib``     -- per-branch / per-line attribution: record an
                  attribution artifact for one cell (``attrib run``),
                  render its offender tables as markdown/HTML
                  (``attrib report``), and compare two artifacts with
                  per-branch regression gates (``attrib diff``).
``bench``      -- benchmark trajectory: time the fixed cell grid into a
                  ``BENCH_<date>.json`` (``bench run``) and diff two
                  trajectory files with regression gates
                  (``bench compare``).
``runs``       -- the run ledger: list recorded harness runs
                  (``runs list``) or inspect one (``runs show``) --
                  per-cell lifecycle, span/profiler conservation
                  checks, merged Perfetto trace export; both take
                  ``--json`` for machine-readable output.
``metrics``    -- export saved metric snapshots in Prometheus text
                  exposition format (``metrics export``).
``intervals``  -- interval telemetry: simulate one cell with per-window
                  counters (``intervals run``), render a saved series
                  as sparklines + markdown (``intervals plot``), or
                  compare two series (``intervals diff``).
``divergence`` -- cross-engine / cross-config divergence bisection
                  (``divergence bisect``): find the first window and
                  record where two sides disagree.

Harness commands that simulate (``experiment``, ``stats run/check``,
``attrib run``, ``bench run``, ``intervals run``) record a run ledger
under
``.repro_cache/runs/<run_id>/`` by default; set ``REPRO_LEDGER=0`` to
disable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import quick_compare
from repro.harness import experiments
from repro.harness.runner import ExperimentRunner
from repro.harness.scale import SCALES, current_scale
from repro.workloads.cache import build_program
from repro.workloads.profiles import PROFILES, WORKLOAD_NAMES

#: Exhibit name -> experiment callable taking (runner).
EXPERIMENTS = {
    "fig1": experiments.fig1_btb_miss_l1i_hit,
    "fig3": experiments.fig3_speedup_vs_btb_size,
    "fig6": experiments.fig6_miss_breakdown,
    "fig13": experiments.fig13_l1i_mpki,
    "fig14": experiments.fig14_ipc_gain,
    "fig15": experiments.fig15_btb_miss_l1i_hit,
    "fig16": experiments.fig16_mpki_reduction,
    "fig17": experiments.fig17_sbb_sensitivity,
    "fig18": experiments.fig18_decoder_idle,
    "bolt": experiments.verilator_bolt_comparison,
    "bogus": experiments.bogus_rate_audit,
    "ablation-index": experiments.ablation_index_policy,
    "ablation-paths": experiments.ablation_max_paths,
    "ablation-retired": experiments.ablation_retired_bit,
    "comparator-zoo": experiments.comparator_zoo,
}

#: ``--config`` short names for ``stats run`` / ``attrib run``: the
#: Figure 14 grid plus the Section 7.1 comparator designs (``fdipN``
#: pins the FDIP predecode depth to N lines).
CONFIG_NAMES = ("base", "skia", "head", "tail", "airbtb", "boomerang",
                "microbtb", "fdip", "fdip1", "fdip2", "fdip4", "fdip8")


def _add_common_options(parser: argparse.ArgumentParser,
                        suppress: bool = False) -> None:
    """Options accepted both before and after the subcommand.

    Subcommand copies use ``SUPPRESS`` defaults so they only overwrite
    the top-level values when actually given on the command line.
    """
    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument("--scale", choices=sorted(SCALES),
                        default=default(None),
                        help="trace scale (overrides REPRO_SCALE)")
    parser.add_argument("--jobs", "-j", type=int, metavar="N",
                        default=default(1),
                        help="simulation worker processes (0 = all CPUs, "
                             "or set REPRO_JOBS; default 1 = serial)")
    parser.add_argument("--no-store", action="store_true",
                        default=default(False),
                        help="skip the persistent result store "
                             "(equivalent to REPRO_NO_STORE=1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skia (ASPLOS 2025) reproduction command line")
    _add_common_options(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare",
                             help="baseline vs Skia on one workload")
    compare.add_argument("workload", nargs="?", default="voter",
                         choices=sorted(WORKLOAD_NAMES))
    _add_common_options(compare, suppress=True)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper exhibit")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    # nargs="+" (not "*"): a bare --workloads used to parse as an empty
    # list, which the old truthiness guard silently dropped -- the
    # exhibit then ran the full set, and a filtered-to-nothing list
    # could reach geomean() as an empty ratio sequence.  Unknown names
    # are rejected here instead of failing deep inside trace generation.
    experiment.add_argument("--workloads", nargs="+", default=None,
                            metavar="NAME", choices=sorted(WORKLOAD_NAMES),
                            help="restrict to these workloads")
    _add_common_options(experiment, suppress=True)

    workloads = sub.add_parser("workloads", help="list workload profiles")
    workloads_sub = workloads.add_subparsers(dest="workloads_command")
    period = workloads_sub.add_parser(
        "period",
        help="detect a workload trace's steady-state period and predict "
             "fast-forward coverage")
    period.add_argument("workload", choices=sorted(PROFILES))
    period.add_argument("--records", type=int, default=None, metavar="N",
                        help="trace length (default: current scale's)")
    period.add_argument("--warmup", type=int, default=None, metavar="N",
                        help="warm-up records (default: current scale's)")
    period.add_argument("--scale", choices=sorted(SCALES), default=None,
                        help="take records/warmup from this scale preset")

    describe = sub.add_parser("describe",
                              help="print a workload's static structure")
    describe.add_argument("workload", choices=sorted(PROFILES))

    tables = sub.add_parser("table", help="print a configuration table")
    tables.add_argument("which", choices=["1", "2"])

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from saved exhibits")
    report.add_argument("--results", default="benchmarks/bench_results")
    report.add_argument("--output", default="EXPERIMENTS.md")

    stats = sub.add_parser(
        "stats", help="metric snapshots and invariant cross-checks")
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)

    stats_run = stats_sub.add_parser(
        "run", help="simulate one cell and dump per-component counters")
    stats_run.add_argument("workload", choices=sorted(WORKLOAD_NAMES))
    stats_run.add_argument("--config", default="skia",
                           choices=list(CONFIG_NAMES),
                           help="configuration to simulate (default: skia)")
    stats_run.add_argument("--dump", metavar="PATH", default=None,
                           help="also save the snapshot as JSON")
    stats_run.add_argument("--trace-out", metavar="PATH", default=None,
                           help="write the structured event trace (JSONL)")
    stats_run.add_argument("--trace-capacity", type=int, default=65_536,
                           help="event ring-buffer size (default 65536)")
    stats_run.add_argument("--timeline-out", metavar="PATH", default=None,
                           help="write the pipeline timeline as Chrome "
                                "trace-event JSON (Perfetto-loadable)")
    _add_common_options(stats_run, suppress=True)

    stats_diff = stats_sub.add_parser(
        "diff", help="compare two saved metric snapshots")
    stats_diff.add_argument("before")
    stats_diff.add_argument("after")

    stats_check = stats_sub.add_parser(
        "check", help="invariant cross-checks over the Figure 14 grid "
                      "or over saved snapshot files")
    stats_check.add_argument("--workloads", nargs="+", default=None,
                             metavar="NAME",
                             choices=sorted(WORKLOAD_NAMES),
                             help="restrict to these workloads")
    stats_check.add_argument("--snapshot", nargs="+", default=None,
                             metavar="PATH",
                             help="check these saved snapshot files "
                                  "instead of simulating the grid")
    _add_common_options(stats_check, suppress=True)

    stats_trace = stats_sub.add_parser(
        "trace", help="inspect or convert a saved event trace (JSONL)")
    stats_trace.add_argument("path", help="JSONL dump from stats run "
                                          "--trace-out")
    stats_trace.add_argument("--chrome", metavar="OUT", default=None,
                             help="convert to Chrome trace-event JSON "
                                  "instead of summarising")

    attrib = sub.add_parser(
        "attrib", help="per-branch / per-line attribution: who causes "
                       "the misses, who gets rescued")
    attrib_sub = attrib.add_subparsers(dest="attrib_command", required=True)

    attrib_run = attrib_sub.add_parser(
        "run", help="simulate one cell with attribution recording; "
                    "exits non-zero on any conservation violation")
    attrib_run.add_argument("workload", choices=sorted(WORKLOAD_NAMES))
    attrib_run.add_argument("--config", default="skia",
                            choices=list(CONFIG_NAMES),
                            help="configuration to simulate "
                                 "(default: skia)")
    attrib_run.add_argument("--out", metavar="PATH", default=None,
                            help="save the attribution artifact as JSON "
                                 "(input to attrib report / diff)")
    attrib_run.add_argument("--report", metavar="PATH", default=None,
                            help="also render the report (markdown, or "
                                 "HTML for a .html/.htm suffix)")
    attrib_run.add_argument("--snapshot-out", metavar="PATH", default=None,
                            help="save the metric snapshot merged with "
                                 "the attrib.* rollup keys (checkable "
                                 "via stats check --snapshot)")
    attrib_run.add_argument("--top", type=int, default=20, metavar="N",
                            help="offender-table depth (default 20)")
    _add_common_options(attrib_run, suppress=True)

    attrib_report = attrib_sub.add_parser(
        "report", help="render a saved attribution artifact")
    attrib_report.add_argument("artifact", help="JSON from attrib run "
                                                "--out")
    attrib_report.add_argument("--format", default=None,
                               choices=["markdown", "md", "html"],
                               help="output format (default: by --out "
                                    "suffix, else markdown)")
    attrib_report.add_argument("--out", metavar="PATH", default=None,
                               help="write to a file instead of stdout")
    attrib_report.add_argument("--top", type=int, default=20, metavar="N",
                               help="offender-table depth (default 20)")

    attrib_diff = attrib_sub.add_parser(
        "diff", help="per-branch comparison of two artifacts; exits "
                     "non-zero when any branch regresses past thresholds")
    attrib_diff.add_argument("before", help="baseline artifact JSON")
    attrib_diff.add_argument("after", help="candidate artifact JSON")
    attrib_diff.add_argument("--min-cycles", type=float, default=None,
                             metavar="CYCLES",
                             help="absolute resteer-cycle growth gate "
                                  "(default 100)")
    attrib_diff.add_argument("--min-pct", type=float, default=None,
                             metavar="PCT",
                             help="relative growth gate, percent of the "
                                  "before-value (default 10)")
    attrib_diff.add_argument("--top", type=int, default=20, metavar="N",
                             help="rows to print (default 20)")

    bench = sub.add_parser(
        "bench", help="benchmark trajectory: record and regression-gate")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="time the fixed cell grid into BENCH_<date>.json")
    bench_run.add_argument("--out", metavar="PATH", default=None,
                           help="output file (default BENCH_<YYYYMMDD>"
                                ".json in the current directory)")
    bench_run.add_argument("--workloads", nargs="+", default=None,
                           metavar="NAME", choices=sorted(WORKLOAD_NAMES),
                           help="override the default bench workloads")
    _add_common_options(bench_run, suppress=True)

    bench_compare = bench_sub.add_parser(
        "compare", help="diff two trajectory files; non-zero on "
                        "regression")
    bench_compare.add_argument("before", nargs="?", default=None)
    bench_compare.add_argument("after", nargs="?", default=None)
    bench_compare.add_argument("--baseline", metavar="PATH",
                               default=None,
                               help="baseline when no 'before' is given "
                                    "(default benchmarks/baseline_smoke"
                                    ".json)")
    bench_compare.add_argument("--threshold", type=float, default=None,
                               metavar="PCT",
                               help="max tolerated throughput drop "
                                    "(default 25)")
    bench_compare.add_argument("--figure-threshold", type=float,
                               default=None, metavar="PCT",
                               help="also gate per-figure runtime "
                                    "growth (off by default)")

    trace = sub.add_parser("trace", help="dump or inspect binary traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    dump = trace_sub.add_parser("dump", help="generate and save a trace")
    dump.add_argument("workload", choices=sorted(PROFILES))
    dump.add_argument("path")
    dump.add_argument("--records", type=int, default=None,
                      help="record count (default: scale's records)")
    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("path")

    runs = sub.add_parser(
        "runs", help="list or inspect recorded run ledgers")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="list recorded runs, newest first")
    runs_list.add_argument("--root", metavar="DIR", default=None,
                           help="runs root (default: REPRO_CACHE_DIR or "
                                ".repro_cache, /runs)")
    runs_list.add_argument("--json", action="store_true",
                           help="machine-readable output (one JSON array "
                                "of run summaries)")
    runs_show = runs_sub.add_parser(
        "show", help="inspect one run's manifest; exits non-zero when "
                     "cells are missing a terminal state or --check "
                     "finds a conservation violation")
    runs_show.add_argument("run_id", nargs="?", default=None,
                           help="run id (default: the latest run)")
    runs_show.add_argument("--latest", action="store_true",
                           help="select the most recent run")
    runs_show.add_argument("--cells", action="store_true",
                           help="print the per-cell lifecycle table")
    runs_show.add_argument("--check", action="store_true",
                           help="verify span<->profiler and span<->cell "
                                "conservation over the run artifacts")
    runs_show.add_argument("--perfetto", metavar="OUT", default=None,
                           help="merge spans + pipeline timelines into "
                                "one Perfetto-loadable trace file")
    runs_show.add_argument("--root", metavar="DIR", default=None,
                           help="runs root (default: REPRO_CACHE_DIR or "
                                ".repro_cache, /runs)")
    runs_show.add_argument("--json", action="store_true",
                           help="machine-readable output (one JSON run "
                                "summary with per-cell lifecycle)")

    metrics = sub.add_parser(
        "metrics", help="export metric snapshots for external tooling")
    metrics_sub = metrics.add_subparsers(dest="metrics_command",
                                         required=True)
    metrics_export = metrics_sub.add_parser(
        "export", help="render saved snapshots (stats run --dump) in "
                       "Prometheus text exposition format")
    metrics_export.add_argument("snapshots", nargs="+", metavar="SNAPSHOT",
                                help="snapshot JSON files; several are "
                                     "merged (counters summed) first")
    metrics_export.add_argument("--out", metavar="PATH", default=None,
                                help="write to a file instead of stdout")

    intervals = sub.add_parser(
        "intervals", help="interval telemetry: per-window counter time "
                          "series")
    intervals_sub = intervals.add_subparsers(dest="intervals_command",
                                             required=True)
    intervals_run = intervals_sub.add_parser(
        "run", help="simulate one cell with window telemetry; exits "
                    "non-zero on an interval-conservation violation")
    intervals_run.add_argument("workload", choices=sorted(WORKLOAD_NAMES))
    intervals_run.add_argument("--config", default="skia",
                               choices=list(CONFIG_NAMES),
                               help="configuration to simulate "
                                    "(default: skia)")
    intervals_run.add_argument("--window", type=int, default=1000,
                               metavar="N",
                               help="records per window (default 1000)")
    intervals_run.add_argument("--out", metavar="PATH", default=None,
                               help="save the series as JSON (input to "
                                    "intervals plot / diff)")
    intervals_run.add_argument("--markdown", metavar="PATH", default=None,
                               help="also write the markdown time series")
    intervals_run.add_argument("--metrics", nargs="+", default=None,
                               metavar="NAME",
                               help="metrics to render (default: ipc, "
                                    "btb_miss_mpki, rescue_rate and the "
                                    "per-cause resteer columns)")
    _add_common_options(intervals_run, suppress=True)

    intervals_plot = intervals_sub.add_parser(
        "plot", help="render a saved series as sparklines + a markdown "
                     "table")
    intervals_plot.add_argument("series", help="JSON from intervals run "
                                               "--out")
    intervals_plot.add_argument("--metrics", nargs="+", default=None,
                                metavar="NAME",
                                help="metrics to render")
    intervals_plot.add_argument("--out", metavar="PATH", default=None,
                                help="write to a file instead of stdout")

    intervals_diff = intervals_sub.add_parser(
        "diff", help="compare two saved series; exits non-zero when "
                     "they differ")
    intervals_diff.add_argument("a", help="baseline series JSON")
    intervals_diff.add_argument("b", help="candidate series JSON")
    intervals_diff.add_argument("--top", type=int, default=20, metavar="N",
                                help="differing rows to print (default 20)")

    divergence = sub.add_parser(
        "divergence", help="cross-engine / cross-config divergence "
                           "bisection")
    divergence_sub = divergence.add_subparsers(dest="divergence_command",
                                               required=True)
    divergence_bisect = divergence_sub.add_parser(
        "bisect", help="find the first window and record where two "
                       "sides disagree; exits 1 when they diverge")
    divergence_bisect.add_argument("workload",
                                   choices=sorted(WORKLOAD_NAMES))
    divergence_bisect.add_argument("--a", dest="engine_a",
                                   default="object",
                                   choices=["object", "compiled",
                                            "batched"],
                                   help="A-side engine (default: object)")
    divergence_bisect.add_argument("--b", dest="engine_b",
                                   default="batched",
                                   choices=["object", "compiled",
                                            "batched"],
                                   help="B-side engine (default: batched)")
    divergence_bisect.add_argument("--config", default="skia",
                                   choices=list(CONFIG_NAMES),
                                   help="configuration for both sides "
                                        "(default: skia)")
    divergence_bisect.add_argument("--config-b", default=None,
                                   choices=list(CONFIG_NAMES),
                                   help="B-side configuration (default: "
                                        "same as --config; when it "
                                        "differs, only counter rows are "
                                        "compared)")
    divergence_bisect.add_argument("--window", type=int, default=1000,
                                   metavar="N",
                                   help="window-pass granularity in "
                                        "records (default 1000)")
    divergence_bisect.add_argument("--json", metavar="PATH", default=None,
                                   help="save the report as JSON")
    divergence_bisect.add_argument("--no-events", action="store_true",
                                   help="skip the object-oracle event "
                                        "replay of the divergent record")
    _add_common_options(divergence_bisect, suppress=True)
    return parser


def _run_compare(args) -> int:
    scale = SCALES[args.scale] if args.scale else current_scale()
    result = quick_compare(args.workload, records=scale.records,
                           warmup=scale.warmup)
    print(result.render())
    return 0


def _run_experiment(args) -> int:
    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store)
    function = EXPERIMENTS[args.name]
    kwargs = {}
    if args.workloads is not None:
        kwargs["workloads"] = args.workloads
    if args.jobs != 1:
        # Fan the exhibit's whole grid out first; the exhibit function
        # then assembles its tables from memo hits.
        experiments.prefetch_exhibit(runner, args.name, jobs=args.jobs,
                                     **kwargs)
    result = function(runner, **kwargs)
    print(result["render"])
    return 0


def _run_workloads() -> int:
    for name in WORKLOAD_NAMES:
        profile = PROFILES[name]
        expected = profile.expected
        print(f"{name:18s} {profile.suite:12s} "
              f"paper gain {expected.ipc_gain_pct:5.1f}% "
              f"({expected.gain_class})")
    return 0


def _run_workloads_period(args) -> int:
    """``repro workloads period``: trace periodicity + skip forecast."""
    from repro.workloads import compile_trace
    from repro.workloads.cache import build_trace

    scale = SCALES[args.scale] if args.scale else current_scale()
    n_records = args.records if args.records is not None else scale.records
    warmup = args.warmup if args.warmup is not None else scale.warmup
    records = build_trace(args.workload, n_records)
    detected = compile_trace(records).period()
    if detected is None:
        print(f"{args.workload}: no detected period over {n_records} "
              f"records (aperiodic trace; fast-forward falls back to "
              f"plain stepping)")
        return 0
    period, preamble = detected
    periods = (n_records - preamble) // period
    print(f"{args.workload}: period {period} records, preamble {preamble} "
          f"({periods} whole periods in {n_records} records)")
    # Mirrors FastForward's feasibility rule with quantum == period
    # (interval telemetry widens the quantum to lcm(period, window)).
    first = max(warmup + 1, preamble, 1)
    if first + 2 * period > n_records:
        print(f"  fast-forward infeasible at warmup {warmup}: first probe "
              f"at {first} needs {first + 2 * period} <= {n_records}")
        return 0
    earliest_skip = first + period
    coverage = ((n_records - earliest_skip) // period) * period
    print(f"  first probe at {first}, quantum {period}; predicted "
          f"fast-forward coverage up to {coverage} records "
          f"({100.0 * coverage / n_records:.1f}%) at warmup {warmup}")
    return 0


def _run_describe(args) -> int:
    program = build_program(args.workload)
    print(program.describe())
    return 0


def _run_table(args) -> int:
    if args.which == "1":
        print(experiments.table1_config()["render"])
    else:
        print(experiments.table2_benchmarks()["render"])
    return 0


def _stats_config(name: str):
    """Resolve a ``--config`` short name (see :data:`CONFIG_NAMES`).

    Covers the Figure 14 grid plus the Section 7.1 comparator designs;
    ``fdipN`` selects the FDIP comparator at predecode depth ``N``.
    """
    from repro.frontend.comparators import COMPARATOR_NAMES
    from repro.frontend.config import FrontEndConfig, SkiaConfig

    if name == "base":
        return FrontEndConfig()
    if name.startswith("fdip") and name[4:].isdigit():
        return FrontEndConfig().with_fdip_depth(int(name[4:]))
    if name in COMPARATOR_NAMES:
        return FrontEndConfig().with_comparator(name)
    heads = name in ("skia", "both", "head")
    tails = name in ("skia", "both", "tail")
    return FrontEndConfig(skia=SkiaConfig(decode_heads=heads,
                                          decode_tails=tails))


def _print_violations(violations, label: str) -> None:
    for violation in violations:
        print(f"INVARIANT VIOLATION [{label}] {violation}")


def _run_stats_run(args) -> int:
    import time

    from repro.frontend.engine import FrontEndSimulator
    from repro.obs import (PROFILER, EventTrace, TimelineRecorder,
                           applicable_invariants, check_snapshot,
                           render_snapshot, save_snapshot)
    from repro.obs import ledger as ledger_mod
    from repro.obs import spans as spans_mod
    from repro.workloads.cache import build_trace

    scale = SCALES[args.scale] if args.scale else current_scale()
    config = _stats_config(args.config)
    ledger = ledger_mod.active_ledger()
    cell_id = None
    if ledger is not None:
        cell_id = ledger_mod.cell_id_for(args.workload, config, 0, False)
        ledger.grid(cells=1, submitted=1, jobs=1)
        ledger.cell(cell_id, "queued")
        ledger.cell(cell_id, "store_probe", hit=False, store=False)
        spans_mod.set_cell(cell_id)
    started = time.monotonic()
    try:
        with PROFILER.section("harness.cell"):
            with PROFILER.section("harness.workload"):
                program = build_program(args.workload)
                records = build_trace(args.workload, scale.records)
            if ledger is not None:
                ledger.cell(cell_id, "prepare", source="compile")
            simulator = FrontEndSimulator(program, config)
            trace = None
            if args.trace_out:
                trace = EventTrace(capacity=args.trace_capacity)
                simulator.attach_trace(trace)
            timeline = None
            if args.timeline_out:
                timeline = TimelineRecorder()
                simulator.attach_timeline(timeline)
            with PROFILER.section("harness.simulate"):
                simulator.run(records, warmup=scale.warmup)
            if ledger is not None:
                ledger.cell(cell_id, "simulate", mode="object",
                            fallback_reason=None,
                            fastforward=getattr(
                                simulator, "fastforward_summary", None))
    except Exception as error:
        if ledger is not None:
            ledger.cell(cell_id, "error", error=repr(error))
        raise
    finally:
        spans_mod.set_cell(None)
    if ledger is not None:
        ledger.group([cell_id], mode="stats")

    snapshot = simulator.metrics_snapshot()
    print(render_snapshot(
        snapshot,
        title=f"{args.workload} [{args.config}] @ {scale.name} scale"))
    if args.dump:
        save_snapshot(args.dump, snapshot,
                      meta={"workload": args.workload, "config": args.config,
                            "scale": scale.name})
        print(f"\nsnapshot saved to {args.dump}")
    if trace is not None:
        trace.to_jsonl(args.trace_out)
        print(f"trace: {trace.emitted} events emitted, {trace.dropped} "
              f"dropped -> {args.trace_out}")
    if timeline is not None:
        timeline.to_chrome(args.timeline_out)
        if ledger is not None:
            # Also file the chrome export with the run, so `repro runs
            # show --perfetto` merges it with the harness spans.
            timeline.to_chrome(ledger.timeline_path(cell_id))
        print(f"timeline: {timeline.emitted} events emitted, "
              f"{timeline.dropped} dropped -> {args.timeline_out} "
              f"(load in Perfetto / chrome://tracing)")

    violations = check_snapshot(snapshot)
    if ledger is not None:
        ledger.cell(cell_id, "invariants",
                    violations=[v.invariant for v in violations])
        ledger.cell(cell_id, "done", result="simulated", spanned=True,
                    mode="object", fallback_reason=None,
                    wall_s=round(time.monotonic() - started, 6))
    if violations:
        _print_violations(violations, f"{args.workload}/{args.config}")
        return 1
    checked = len(applicable_invariants(snapshot))
    print(f"\ninvariants: {checked} checked, all passing")
    return 0


def _run_stats_diff(args) -> int:
    from repro.harness.reporting import format_table
    from repro.obs import diff_snapshots, load_snapshot

    before, _ = load_snapshot(args.before)
    after, _ = load_snapshot(args.after)
    changed = diff_snapshots(before, after)
    if not changed:
        print("snapshots are identical")
        return 0
    rows = []
    for key, (a, b) in changed.items():
        rows.append([key,
                     "-" if a is None else a,
                     "-" if b is None else b])
    print(format_table(["metric", args.before, args.after], rows))
    return 0


def _check_snapshot_files(paths) -> int:
    """``stats check --snapshot``: check saved snapshot files."""
    from repro.obs import applicable_invariants, check_snapshot, load_snapshot

    failures = 0
    for path in paths:
        snapshot, meta = load_snapshot(path)
        label = meta.get("workload", path) if meta else path
        violations = check_snapshot(snapshot)
        if violations:
            _print_violations(violations, str(label))
            failures += 1
        else:
            checked = len(applicable_invariants(snapshot))
            print(f"{path}: {checked} invariants checked, all passing")
    return 1 if failures else 0


def _run_stats_check(args) -> int:
    from repro.harness.parallel import Cell
    from repro.obs import check_snapshot

    if args.snapshot:
        return _check_snapshot_files(args.snapshot)

    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store)
    # Parallel workers hand snapshots back through the store; without
    # one, run serially so snapshots stay in the in-memory memo.
    jobs = args.jobs if runner.store is not None else 1
    workloads = args.workloads or list(WORKLOAD_NAMES)
    configs = {name: _stats_config(name)
               for name in ("base", "head", "tail", "skia")}

    cells = [Cell(workload, config)
             for workload in workloads for config in configs.values()]
    runner.run_cells(cells, jobs=jobs)

    failures = 0
    unavailable = 0
    for workload in workloads:
        for name, config in configs.items():
            metrics = runner.metrics_for(workload, config)
            if metrics is None:
                print(f"no metric snapshot for {workload}/{name} "
                      f"(stale store entry? re-run without it)")
                unavailable += 1
                continue
            violations = check_snapshot(metrics)
            if violations:
                _print_violations(violations, f"{workload}/{name}")
                failures += 1
    checked = len(workloads) * len(configs)
    print(f"checked {checked} cells ({len(workloads)} workloads x "
          f"{len(configs)} configs) at {scale.name} scale: "
          f"{failures} failing, {unavailable} without snapshots")
    return 1 if failures or unavailable else 0


def _run_stats_trace(args) -> int:
    import json

    from repro.obs import chrome_from_jsonl

    if args.chrome:
        out = chrome_from_jsonl(args.path, args.chrome)
        print(f"chrome trace -> {out} (load in Perfetto / "
              f"chrome://tracing)")
        return 0
    header = None
    counts: dict[str, int] = {}
    with open(args.path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.get("kind", "?")
            if kind == "trace_header":
                header = event
                continue
            counts[kind] = counts.get(kind, 0) + 1
    if header is not None:
        print(f"capacity {header.get('capacity')}, "
              f"emitted {header.get('emitted')}, "
              f"dropped {header.get('dropped')}")
    for kind in sorted(counts):
        print(f"{kind:10s} {counts[kind]}")
    return 0


def _run_stats(args) -> int:
    if args.stats_command == "run":
        return _run_stats_run(args)
    if args.stats_command == "diff":
        return _run_stats_diff(args)
    if args.stats_command == "trace":
        return _run_stats_trace(args)
    return _run_stats_check(args)


def _attrib_report_format(explicit: str | None, out: str | None) -> str:
    if explicit:
        return "markdown" if explicit == "md" else explicit
    if out and out.lower().endswith((".html", ".htm")):
        return "html"
    return "markdown"


def _run_attrib_run(args) -> int:
    from repro.obs import applicable_invariants, check_snapshot
    from repro.obs.attribution import render_report
    from repro.obs.registry import save_snapshot

    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store,
                              record_attribution=True)
    config = _stats_config(args.config)
    stats, aggregator = runner.run_with_attribution(args.workload, config)

    totals = aggregator.totals()
    fraction = aggregator.shadow_resident_fraction
    print(f"{args.workload} [{args.config}] @ {scale.name} scale: "
          f"{int(totals['branches'])} branches over "
          f"{int(totals['lines'])} lines attributed")
    print(f"  BTB misses {int(totals['btb_misses'])}, shadow-resident "
          f"{int(totals['btb_miss_l1i_hit'])} ({fraction:.1%}; "
          f"SimStats fraction {stats.btb_miss_l1i_hit_fraction:.1%})")
    print(f"  SBB rescues {int(totals.get('sbb_hits', 0))} "
          f"(U {int(totals['sbb_hits_u'])} / R {int(totals['sbb_hits_r'])}), "
          f"resteer cycles {totals['resteer_cycles_total']:.0f}")

    if args.out:
        aggregator.save(args.out)
        print(f"artifact -> {args.out}")
    if args.report:
        fmt = _attrib_report_format(None, args.report)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(render_report(aggregator, fmt=fmt, top=args.top))
        print(f"report ({fmt}) -> {args.report}")

    metrics = runner.metrics_for(args.workload, config)
    merged = dict(metrics or {})
    merged.update(aggregator.snapshot())
    if args.snapshot_out:
        save_snapshot(args.snapshot_out, merged,
                      meta={"workload": args.workload,
                            "config": args.config, "scale": scale.name,
                            "attribution": True})
        print(f"merged snapshot -> {args.snapshot_out}")

    violations = check_snapshot(merged)
    if violations:
        _print_violations(violations, f"{args.workload}/{args.config}")
        return 1
    checked = len(applicable_invariants(merged))
    print(f"invariants: {checked} checked (attribution conservation "
          f"included), all passing")
    return 0


def _run_attrib_report(args) -> int:
    from repro.obs.attribution import AttributionAggregator, render_report

    aggregator = AttributionAggregator.load(args.artifact)
    fmt = _attrib_report_format(args.format, args.out)
    rendered = render_report(aggregator, fmt=fmt, top=args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"report ({fmt}) -> {args.out}")
    else:
        print(rendered)
    return 0


def _run_attrib_diff(args) -> int:
    from repro.obs.attribution import (DIFF_MIN_CYCLES, DIFF_MIN_PCT,
                                       AttributionAggregator,
                                       diff_attributions)

    before = AttributionAggregator.load(args.before)
    after = AttributionAggregator.load(args.after)
    diff = diff_attributions(
        before, after,
        min_cycles=(args.min_cycles if args.min_cycles is not None
                    else DIFF_MIN_CYCLES),
        min_pct=(args.min_pct if args.min_pct is not None
                 else DIFF_MIN_PCT))
    if not diff.deltas:
        print("no per-branch attribution movement")
        return 0
    print(f"comparing {args.before} -> {args.after}")
    print(diff.render(top=args.top))
    return 1 if diff.regressions else 0


def _run_attrib(args) -> int:
    if args.attrib_command == "run":
        return _run_attrib_run(args)
    if args.attrib_command == "report":
        return _run_attrib_report(args)
    return _run_attrib_diff(args)


def _run_bench(args) -> int:
    from pathlib import Path

    from repro.harness import bench

    if args.bench_command == "run":
        scale = SCALES[args.scale] if args.scale else current_scale()
        payload, path = bench.run_bench(scale, workloads=args.workloads,
                                        jobs=args.jobs, out=args.out)
        throughput = payload["throughput"]
        print(f"bench: {payload['cells']} cells @ {scale.name} scale, "
              f"{throughput['records_per_sec']:.0f} records/sec cold, "
              f"warm replay {throughput['warm_wall_s']:.2f}s")
        print(f"trajectory -> {path}")
        return 0

    # bench compare
    before_path = args.before
    after_path = args.after
    if before_path is not None and after_path is None:
        # One positional: it is the 'after'; baseline fills 'before'.
        before_path, after_path = None, before_path
    if after_path is None:
        latest = bench.latest_bench_file()
        if latest is None:
            print("no BENCH_*.json found; run `repro bench run` first")
            return 2
        after_path = latest
    if before_path is None:
        before_path = args.baseline or bench.DEFAULT_BASELINE
        if not Path(before_path).exists():
            print(f"no baseline at {before_path}; first run -- bless one "
                  f"by copying {after_path} there")
            return 0
    threshold = (args.threshold if args.threshold is not None
                 else bench.DEFAULT_THRESHOLD_PCT)
    try:
        regressions, lines = bench.compare_bench(
            bench.load_bench(before_path), bench.load_bench(after_path),
            threshold_pct=threshold,
            figure_threshold_pct=args.figure_threshold)
    except bench.BenchSchemaMismatch as mismatch:
        print(f"cannot compare {before_path} (schema "
              f"{mismatch.before_schema}) with {after_path} (schema "
              f"{mismatch.after_schema}): the files use different bench "
              f"payload schemas")
        print("re-record both sides with this build (`repro bench run`) "
              "or re-bless the baseline from a fresh run")
        return 2
    except ValueError as error:
        print(f"cannot compare: {error}")
        return 2
    print(f"comparing {before_path} -> {after_path}")
    for line in lines:
        print(line)
    if regressions:
        print(f"{len(regressions)} regression(s) beyond thresholds")
        return 1
    print("no regressions beyond thresholds")
    return 0


def _run_trace(args) -> int:
    from repro.workloads.cache import build_trace
    from repro.workloads.traceio import save_trace, trace_info

    if args.trace_command == "dump":
        scale = SCALES[args.scale] if args.scale else current_scale()
        records = build_trace(args.workload,
                              args.records or scale.records)
        save_trace(records, args.path)
        print(f"wrote {len(records)} records to {args.path}")
        return 0
    info = trace_info(args.path)
    for key, value in sorted(info.items()):
        print(f"{key}: {value}")
    return 0


def _load_run_profiles(run_dir):
    """``{pid: profiler snapshot delta}`` from ``profile-<pid>.json``."""
    import json

    profiles = {}
    for path in sorted(run_dir.glob("profile-*.json")):
        stem = path.stem  # profile-<pid>
        try:
            pid = int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            continue
        try:
            profiles[pid] = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            continue
    return profiles


def _print_run_summary(summary) -> None:
    results = summary.results()
    outcome = (", ".join(f"{count} {label}" for label, count
                         in sorted(results.items())) or "-")
    print(f"run {summary.run_id}")
    print(f"  command:  {summary.command or '-'}")
    print(f"  created:  {summary.created or '-'}  "
          f"(schema v{summary.schema_version})")
    print(f"  status:   {summary.status}")
    print(f"  cells:    {len(summary.cells)} seen / "
          f"{summary.grid_cells} submitted ({outcome})")
    print(f"  groups:   {summary.groups} harness.cell sections over "
          f"{summary.group_cells} cells")
    if summary.heartbeat_pids:
        pids = ", ".join(str(pid) for pid in sorted(summary.heartbeat_pids))
        print(f"  workers:  heartbeats from pid {pids}")
    if summary.stragglers:
        print(f"  stragglers: {', '.join(summary.stragglers)}")
    if summary.incomplete:
        print(f"  INCOMPLETE cells (no terminal state): "
              f"{', '.join(summary.incomplete)}")


def _summary_jsonable(summary, cells: bool = False) -> dict:
    """A ``RunSummary`` as a stable JSON-safe dict (the ``--json``
    contract of ``runs list`` / ``runs show``; documented in
    docs/observability.md)."""
    out = {
        "run_id": summary.run_id,
        "command": summary.command,
        "created": summary.created,
        "schema_version": summary.schema_version,
        "status": summary.status,
        "cells_seen": len(summary.cells),
        "cells_submitted": summary.grid_cells,
        "results": summary.results(),
        "groups": summary.groups,
        "group_cells": summary.group_cells,
        "heartbeat_pids": sorted(summary.heartbeat_pids),
        "stragglers": summary.stragglers,
        "incomplete": summary.incomplete,
    }
    if cells:
        out["cells"] = {
            cell_id: {"phases": list(state.phases),
                      "result": state.fields.get("result",
                                                 state.terminal),
                      "wall_s": state.wall_s,
                      "straggler": state.straggler}
            for cell_id, state in sorted(summary.cells.items())}
    return out


def _run_runs(args) -> int:
    import json

    from repro.obs import ledger as ledger_mod

    if args.runs_command == "list":
        summaries = ledger_mod.list_runs(args.root)
        if args.json:
            print(json.dumps([_summary_jsonable(summary)
                              for summary in summaries], indent=2))
            return 0
        if not summaries:
            print(f"no runs under {ledger_mod.runs_root(args.root)}")
            return 0
        for summary in summaries:
            results = summary.results()
            outcome = (",".join(f"{label}:{count}" for label, count
                                in sorted(results.items())) or "-")
            print(f"{summary.run_id}  {summary.status:12s} "
                  f"{len(summary.cells):4d} cells  {outcome:24s} "
                  f"{summary.command}")
        return 0

    # runs show
    run_id = args.run_id
    if run_id is None or args.latest:
        run_id = ledger_mod.latest_run_id(args.root)
        if run_id is None:
            print(f"no runs under {ledger_mod.runs_root(args.root)}")
            return 2
    summary = ledger_mod.load_run(run_id, args.root)
    if not summary.cells and summary.command == "":
        print(f"no manifest for run {run_id} under "
              f"{ledger_mod.runs_root(args.root)}")
        return 2
    if args.json:
        # The JSON view always carries the per-cell lifecycle, and
        # short-circuits the human-oriented extras (--check output and
        # --perfetto progress lines are not JSON).
        print(json.dumps(_summary_jsonable(summary, cells=True), indent=2))
        return 1 if summary.incomplete else 0
    _print_run_summary(summary)
    failures = 1 if summary.incomplete else 0

    if args.cells:
        print("\n  cell                                     phases"
              "                     result      wall")
        for cell_id in sorted(summary.cells):
            state = summary.cells[cell_id]
            phases = ">".join(state.phases)
            result = state.fields.get("result", state.terminal or "-")
            wall = state.wall_s
            wall_text = f"{wall:.3f}s" if wall is not None else "-"
            flag = " STRAGGLER" if state.straggler else ""
            print(f"  {cell_id:40s} {phases:26s} {result:11s} "
                  f"{wall_text}{flag}")

    if args.check:
        from repro.obs import (check_cell_conservation,
                               check_span_conservation, read_spans)
        from repro.obs.ledger import read_manifest

        records = read_manifest(summary.run_dir / "manifest.jsonl")
        spans = read_spans(summary.run_dir / "spans.jsonl")
        profiles = _load_run_profiles(summary.run_dir)
        violations = (check_span_conservation(spans, profiles)
                      + check_cell_conservation(records, spans))
        if violations:
            _print_violations(violations, run_id)
            failures += len(violations)
        else:
            sections = sum(len(profile) for profile in profiles.values())
            print(f"\n  conservation: {len(spans)} spans == profiler "
                  f"totals over {sections} sections x "
                  f"{len(profiles)} processes; cell coverage exact")

    if args.perfetto:
        from repro.obs import merge_run_trace

        out = merge_run_trace(summary.run_dir, args.perfetto)
        print(f"\n  merged Perfetto trace -> {out}")
    return 1 if failures else 0


def _run_metrics(args) -> int:
    from repro.obs import load_snapshot, merge_snapshots, snapshot_to_prometheus

    loaded = [load_snapshot(path) for path in args.snapshots]
    if len(loaded) == 1:
        snapshot, meta = loaded[0]
        labels = {key: str(meta[key]) for key in ("workload", "config",
                                                  "scale") if key in meta}
        text = snapshot_to_prometheus(snapshot, labels=labels or None)
    else:
        merged = merge_snapshots([snapshot for snapshot, _ in loaded])
        text = (f"# merged from {len(loaded)} snapshots\n"
                + snapshot_to_prometheus(merged))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"prometheus text -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _run_intervals(args) -> int:
    from repro.obs.intervals import IntervalSeries, diff_series, sparkline

    if args.intervals_command == "plot":
        series = IntervalSeries.load(args.series)
        rendered = series.render_markdown(args.metrics)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"time series -> {args.out}")
        else:
            print(rendered, end="")
        return 0

    if args.intervals_command == "diff":
        series_a = IntervalSeries.load(args.a)
        series_b = IntervalSeries.load(args.b)
        differences = diff_series(series_a, series_b)
        if not differences:
            print(f"series are identical ({series_a.windows} windows, "
                  f"fingerprint {series_a.fingerprint()})")
            return 0
        print(f"comparing {args.a} (fingerprint "
              f"{series_a.fingerprint()}) -> {args.b} (fingerprint "
              f"{series_b.fingerprint()})")
        for window, column, a_val, b_val in differences[:args.top]:
            where = "geometry" if window < 0 else f"window {window}"
            print(f"  {where}: {column} {a_val} vs {b_val}")
        if len(differences) > args.top:
            print(f"  ... {len(differences) - args.top} more")
        return 1

    # intervals run
    import dataclasses

    from repro.obs import check_snapshot

    scale = SCALES[args.scale] if args.scale else current_scale()
    store = None if args.no_store else "default"
    runner = ExperimentRunner(scale=scale, store=store)
    config = dataclasses.replace(_stats_config(args.config),
                                 interval_size=args.window)
    stats, series = runner.run_with_intervals(args.workload, config)
    print(f"{args.workload} [{args.config}] @ {scale.name} scale: "
          f"{series.windows} windows x {series.interval_size} records, "
          f"fingerprint {series.fingerprint()}")
    for metric in (args.metrics or series.metric_names()):
        print(f"  {metric:24s} {sparkline(series.metric_series(metric))}")
    if args.out:
        series.save(args.out)
        print(f"series -> {args.out}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(series.render_markdown(args.metrics))
        print(f"time series -> {args.markdown}")

    snapshot = runner.metrics_for(args.workload, config)
    if snapshot is None:
        print("no metric snapshot available; conservation not checked")
        return 0
    violations = check_snapshot(snapshot)
    if violations:
        _print_violations(violations, f"{args.workload}/{args.config}")
        return 1
    print("interval conservation: column sums equal the aggregate "
          "counters exactly")
    return 0


def _run_divergence(args) -> int:
    import json

    from repro.obs.divergence import bisect_divergence
    from repro.workloads.cache import build_trace

    scale = SCALES[args.scale] if args.scale else current_scale()
    config_a = _stats_config(args.config)
    config_b = (_stats_config(args.config_b)
                if args.config_b is not None else None)
    program = build_program(args.workload)
    records = build_trace(args.workload, scale.records)
    report = bisect_divergence(
        program, records, config_a, config_b,
        engine_a=args.engine_a, engine_b=args.engine_b,
        warmup=scale.warmup, window=args.window,
        oracle_events=not args.no_events)
    print(report.render(), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_jsonable(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"report -> {args.json}")
    return 0 if report.identical else 1


def _dispatch(args) -> int:
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "workloads":
        if getattr(args, "workloads_command", None) == "period":
            return _run_workloads_period(args)
        return _run_workloads()
    if args.command == "describe":
        return _run_describe(args)
    if args.command == "table":
        return _run_table(args)
    if args.command == "report":
        from repro.harness.report import generate
        generate(results_dir=args.results, output=args.output)
        print(f"wrote {args.output}")
        return 0
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "attrib":
        return _run_attrib(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "runs":
        return _run_runs(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "intervals":
        return _run_intervals(args)
    if args.command == "divergence":
        return _run_divergence(args)
    return 2  # pragma: no cover - argparse enforces choices


def _ledgered_command(args) -> str | None:
    """The run-ledger command label, or ``None`` for unledgered commands.

    Only entry points that simulate get a run: the inspection commands
    (``runs``, ``metrics``, diffs, reports) would just clutter the runs
    root with empty manifests.  ``--no-store`` keeps its contract of
    leaving no ``.repro_cache/`` behind, so it suppresses the ledger
    too (``REPRO_LEDGER=0``/``1`` still overrides either way).
    """
    if "REPRO_LEDGER" not in os.environ:
        from repro.harness.store import store_enabled

        if getattr(args, "no_store", False) or not store_enabled():
            return None
    if args.command == "experiment":
        return f"experiment {args.name}"
    if args.command == "stats":
        if args.stats_command == "run":
            return f"stats run {args.workload} --config {args.config}"
        if args.stats_command == "check" and not args.snapshot:
            return "stats check"
        return None
    if args.command == "attrib" and args.attrib_command == "run":
        return f"attrib run {args.workload} --config {args.config}"
    if (args.command == "workloads"
            and getattr(args, "workloads_command", None) == "period"):
        return f"workloads period {args.workload}"
    if args.command == "bench" and args.bench_command == "run":
        return "bench run"
    if args.command == "intervals" and args.intervals_command == "run":
        return (f"intervals run {args.workload} --config {args.config} "
                f"--window {args.window}")
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = _ledgered_command(args)
    if command is not None:
        from repro.obs.ledger import start_run

        with start_run(command):
            return _dispatch(args)
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
