"""Instruction encoder / assembler.

The workload generator asks this module for two things:

* **filler** instructions of a *chosen byte length* (1-15), so code images
  get a realistic instruction-length mix -- immediates and displacements
  are filled with random bytes, which is what makes head shadow decoding
  genuinely ambiguous;
* **branch** instructions in every form the paper cares about: rel8/rel32
  conditional jumps, rel8/rel32 unconditional jumps, rel32 calls, 1- and
  3-byte returns, and register/memory indirect jumps and calls.

Relative immediates are left as zeros; the layout pass patches them via
:meth:`repro.isa.instruction.Instruction.patch_relative` once block
addresses are known.
"""

from __future__ import annotations

import random

from repro.isa.branch import BranchKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MAX_INSTRUCTION_LENGTH

#: Safe one-byte opcodes used for L=1 fillers and sampling variety.
_ONE_BYTE_OPS = (0x90, 0x50, 0x51, 0x53, 0x55, 0x58, 0x5B, 0x5D, 0x99, 0xC9, 0xF8, 0xFC)

#: ModRM-format opcodes (no immediate) used for register/memory fillers.
_MODRM_OPS = (0x01, 0x03, 0x09, 0x0B, 0x21, 0x23, 0x29, 0x2B, 0x31, 0x33,
              0x39, 0x3B, 0x85, 0x88, 0x89, 0x8A, 0x8B, 0x8D)

#: Prefixes that are always legal to prepend to a filler.
_SAFE_PREFIXES = (0x66, 0x2E, 0x3E, 0x36, 0x48, 0x4C, 0x41, 0x44, 0xF3)


def _modrm(mod: int, reg: int, rm: int) -> int:
    return ((mod & 3) << 6) | ((reg & 7) << 3) | (rm & 7)


def _rand_reg(rng: random.Random) -> int:
    return rng.randrange(8)


def _rand_rm_not4(rng: random.Random) -> int:
    """An rm field that selects no SIB byte (anything but 4)."""
    rm = rng.randrange(7)
    return rm if rm < 4 else rm + 1


def _rand_imm(rng: random.Random, width: int) -> bytes:
    return bytes(rng.randrange(256) for _ in range(width))


def _rand_sib(rng: random.Random, allow_base5: bool = False) -> int:
    """A random SIB byte; with ``allow_base5`` False the base!=5 so the
    mod==0 disp32 special case is not triggered."""
    while True:
        sib = rng.randrange(256)
        if allow_base5 or (sib & 0x7) != 5:
            return sib


class Encoder:
    """Stateless instruction factory (all randomness comes from the rng)."""

    # ------------------------------------------------------------------
    # Fillers
    # ------------------------------------------------------------------

    def filler(self, rng: random.Random, length: int) -> Instruction:
        """A non-branch instruction of exactly ``length`` bytes."""
        if not 1 <= length <= MAX_INSTRUCTION_LENGTH:
            raise ValueError(f"filler length {length} outside 1..{MAX_INSTRUCTION_LENGTH}")
        body = self._filler_body(rng, length)
        prefix_count = length - len(body)
        prefixes = bytes(rng.choice(_SAFE_PREFIXES) for _ in range(prefix_count))
        encoding = bytearray(prefixes + body)
        assert len(encoding) == length
        return Instruction(encoding=encoding, mnemonic=f"filler{length}")

    def _filler_body(self, rng: random.Random, length: int) -> bytes:
        """Pick a base encoding whose length is <= ``length`` and as close
        to it as possible (the remainder becomes prefixes)."""
        builders = _BODY_BUILDERS_BY_LENGTH
        for body_len in range(min(length, _MAX_BODY_LEN), 0, -1):
            options = builders.get(body_len)
            if options:
                return rng.choice(options)(rng)
        raise AssertionError("length 1 builder always exists")

    # ------------------------------------------------------------------
    # Direct branches
    # ------------------------------------------------------------------

    def cond_branch(self, rng: random.Random, target_label: int,
                    wide: bool = False) -> Instruction:
        """``jcc rel8`` (2B) or ``0x0F jcc rel32`` (6B)."""
        cc = rng.randrange(16)
        if wide:
            encoding = bytearray([0x0F, 0x80 + cc, 0, 0, 0, 0])
            rel_offset, rel_width = 2, 4
        else:
            encoding = bytearray([0x70 + cc, 0])
            rel_offset, rel_width = 1, 1
        return Instruction(encoding=encoding, kind=BranchKind.DIRECT_COND,
                           target_label=target_label, rel_width=rel_width,
                           rel_offset=rel_offset, mnemonic="jcc")

    def uncond_jmp(self, rng: random.Random, target_label: int,
                   wide: bool = True) -> Instruction:
        """``jmp rel32`` (5B) or ``jmp rel8`` (2B)."""
        if wide:
            encoding = bytearray([0xE9, 0, 0, 0, 0])
            rel_offset, rel_width = 1, 4
        else:
            encoding = bytearray([0xEB, 0])
            rel_offset, rel_width = 1, 1
        return Instruction(encoding=encoding, kind=BranchKind.DIRECT_UNCOND,
                           target_label=target_label, rel_width=rel_width,
                           rel_offset=rel_offset, mnemonic="jmp")

    def call(self, rng: random.Random, target_label: int) -> Instruction:
        """``call rel32`` (5B)."""
        encoding = bytearray([0xE8, 0, 0, 0, 0])
        return Instruction(encoding=encoding, kind=BranchKind.CALL,
                           target_label=target_label, rel_width=4,
                           rel_offset=1, mnemonic="call")

    def ret(self, rng: random.Random, with_imm: bool = False) -> Instruction:
        """``ret`` (1B) or ``ret imm16`` (3B)."""
        if with_imm:
            encoding = bytearray([0xC2]) + bytearray(_rand_imm(rng, 2))
        else:
            encoding = bytearray([0xC3])
        return Instruction(encoding=encoding, kind=BranchKind.RETURN,
                           mnemonic="ret")

    # ------------------------------------------------------------------
    # Indirect branches
    # ------------------------------------------------------------------

    def indirect_jmp(self, rng: random.Random, memory: bool = False) -> Instruction:
        return self._ff_group(rng, reg=4, memory=memory,
                              kind=BranchKind.INDIRECT_UNCOND, mnemonic="jmp r/m")

    def indirect_call(self, rng: random.Random, memory: bool = False) -> Instruction:
        return self._ff_group(rng, reg=2, memory=memory,
                              kind=BranchKind.INDIRECT_CALL, mnemonic="call r/m")

    def _ff_group(self, rng: random.Random, reg: int, memory: bool,
                  kind: BranchKind, mnemonic: str) -> Instruction:
        if memory:
            # mod=2 rm!=4: FF /reg [reg+disp32] -> 6 bytes.
            modrm = _modrm(2, reg, _rand_rm_not4(rng))
            encoding = bytearray([0xFF, modrm]) + bytearray(_rand_imm(rng, 4))
        else:
            modrm = _modrm(3, reg, _rand_reg(rng))
            encoding = bytearray([0xFF, modrm])
        return Instruction(encoding=encoding, kind=kind, mnemonic=mnemonic)


# ----------------------------------------------------------------------
# Filler body builders, grouped by exact encoded length.
# ----------------------------------------------------------------------

def _body_1(rng: random.Random) -> bytes:
    return bytes([rng.choice(_ONE_BYTE_OPS)])


def _body_2_imm8(rng: random.Random) -> bytes:
    op = rng.choice((0x04, 0x0C, 0x24, 0x2C, 0x34, 0x3C, 0xA8, 0x6A,
                     0xB0, 0xB3, 0xB7))
    return bytes([op]) + _rand_imm(rng, 1)


def _body_2_modrm_reg(rng: random.Random) -> bytes:
    op = rng.choice(_MODRM_OPS)
    return bytes([op, _modrm(3, _rand_reg(rng), _rand_reg(rng))])


def _body_3_modrm_disp8(rng: random.Random) -> bytes:
    op = rng.choice(_MODRM_OPS)
    return bytes([op, _modrm(1, _rand_reg(rng), _rand_rm_not4(rng))]) + _rand_imm(rng, 1)


def _body_3_grp1_imm8(rng: random.Random) -> bytes:
    return bytes([0x83, _modrm(3, rng.randrange(8), _rand_reg(rng))]) + _rand_imm(rng, 1)


def _body_3_escape_modrm(rng: random.Random) -> bytes:
    op = rng.choice((0xB6, 0xB7, 0xBE, 0xBF, 0xAF, 0x1F))
    return bytes([0x0F, op, _modrm(3, _rand_reg(rng), _rand_reg(rng))])


def _body_4_modrm_sib_disp8(rng: random.Random) -> bytes:
    op = rng.choice(_MODRM_OPS)
    return bytes([op, _modrm(1, _rand_reg(rng), 4), _rand_sib(rng)]) + _rand_imm(rng, 1)


def _body_4_escape_disp8(rng: random.Random) -> bytes:
    op = rng.choice((0xB6, 0xB7, 0xBE, 0xBF, 0xAF, 0x1F))
    return bytes([0x0F, op, _modrm(1, _rand_reg(rng), _rand_rm_not4(rng))]) + _rand_imm(rng, 1)


def _body_5_mov_imm32(rng: random.Random) -> bytes:
    return bytes([0xB8 + _rand_reg(rng)]) + _rand_imm(rng, 4)


def _body_5_push_imm32(rng: random.Random) -> bytes:
    return bytes([0x68]) + _rand_imm(rng, 4)


def _body_5_escape_sib_disp8(rng: random.Random) -> bytes:
    op = rng.choice((0xB6, 0xB7, 0xBE, 0xBF, 0xAF, 0x1F))
    return bytes([0x0F, op, _modrm(1, _rand_reg(rng), 4), _rand_sib(rng)]) + _rand_imm(rng, 1)


def _body_6_grp1_imm32(rng: random.Random) -> bytes:
    return bytes([0x81, _modrm(3, rng.randrange(8), _rand_reg(rng))]) + _rand_imm(rng, 4)


def _body_6_modrm_disp32(rng: random.Random) -> bytes:
    op = rng.choice(_MODRM_OPS)
    return bytes([op, _modrm(2, _rand_reg(rng), _rand_rm_not4(rng))]) + _rand_imm(rng, 4)


def _body_7_modrm_sib_disp32(rng: random.Random) -> bytes:
    op = rng.choice(_MODRM_OPS)
    return bytes([op, _modrm(2, _rand_reg(rng), 4), _rand_sib(rng)]) + _rand_imm(rng, 4)


def _body_7_grp1_disp8_imm32(rng: random.Random) -> bytes:
    return (bytes([0x81, _modrm(1, rng.randrange(8), _rand_rm_not4(rng))])
            + _rand_imm(rng, 1) + _rand_imm(rng, 4))


def _body_8_grp1_sib_disp8_imm32(rng: random.Random) -> bytes:
    return (bytes([0x81, _modrm(1, rng.randrange(8), 4), _rand_sib(rng)])
            + _rand_imm(rng, 1) + _rand_imm(rng, 4))


def _body_9_moffs(rng: random.Random) -> bytes:
    return bytes([rng.choice((0xA0, 0xA1, 0xA2, 0xA3))]) + _rand_imm(rng, 8)


def _body_10_grp1_disp32_imm32(rng: random.Random) -> bytes:
    return (bytes([0x81, _modrm(2, rng.randrange(8), _rand_rm_not4(rng))])
            + _rand_imm(rng, 4) + _rand_imm(rng, 4))


def _body_11_grp1_sib_disp32_imm32(rng: random.Random) -> bytes:
    return (bytes([0x81, _modrm(2, rng.randrange(8), 4), _rand_sib(rng)])
            + _rand_imm(rng, 4) + _rand_imm(rng, 4))


_BODY_BUILDERS_BY_LENGTH: dict[int, list] = {
    1: [_body_1],
    2: [_body_2_imm8, _body_2_modrm_reg],
    3: [_body_3_modrm_disp8, _body_3_grp1_imm8, _body_3_escape_modrm],
    4: [_body_4_modrm_sib_disp8, _body_4_escape_disp8],
    5: [_body_5_mov_imm32, _body_5_push_imm32, _body_5_escape_sib_disp8],
    6: [_body_6_grp1_imm32, _body_6_modrm_disp32],
    7: [_body_7_modrm_sib_disp32, _body_7_grp1_disp8_imm32],
    8: [_body_8_grp1_sib_disp8_imm32],
    9: [_body_9_moffs],
    10: [_body_10_grp1_disp32_imm32],
    11: [_body_11_grp1_sib_disp32_imm32],
}
_MAX_BODY_LEN = max(_BODY_BUILDERS_BY_LENGTH)
