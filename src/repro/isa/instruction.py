"""Instruction data model.

Two views exist:

* :class:`Instruction` -- what the *encoder* produces: an abstract
  instruction with a concrete encoding, placed at an address by the layout
  engine (the ground truth the workload generator knows).
* :class:`DecodedInstruction` -- what the *decoder* recovers from raw
  bytes: length/kind/target only, which is all any front-end structure is
  allowed to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.branch import BranchKind


@dataclass(frozen=True)
class DecodedInstruction:
    """Result of decoding bytes at one offset.

    ``target`` is the absolute target address for *direct* branches (the
    decoder computes ``pc + length + rel``); ``None`` for everything else,
    including returns and indirect branches whose targets need runtime
    state.
    """

    pc: int
    length: int
    kind: BranchKind
    target: int | None = None
    mnemonic: str = "op"

    def __post_init__(self) -> None:
        if not 1 <= self.length:
            raise ValueError(f"non-positive instruction length {self.length}")

    @property
    def end(self) -> int:
        """Address of the byte just past this instruction."""
        return self.pc + self.length

    @property
    def is_branch(self) -> bool:
        return self.kind.is_branch


@dataclass
class Instruction:
    """An encoder-side instruction: bytes plus ground-truth metadata.

    ``target_label`` names a basic block whose final address is patched
    into the relative immediate once layout is complete.
    """

    encoding: bytearray
    kind: BranchKind = BranchKind.NOT_BRANCH
    target_label: int | None = None
    rel_width: int = 0
    rel_offset: int = 0
    mnemonic: str = "op"
    pc: int = field(default=-1)

    @property
    def length(self) -> int:
        return len(self.encoding)

    @property
    def is_branch(self) -> bool:
        return self.kind.is_branch

    def patch_relative(self, target_address: int) -> None:
        """Write the PC-relative displacement to ``target_address``.

        Requires ``pc`` to be assigned (layout done).  Raises
        :class:`OverflowError` if the displacement does not fit the
        encoded immediate width, so the caller can re-encode with a wider
        form.
        """
        if self.pc < 0:
            raise RuntimeError("patch_relative before layout assigned a pc")
        if self.rel_width == 0:
            raise RuntimeError(f"{self.mnemonic} has no relative field")
        rel = target_address - (self.pc + self.length)
        limit = 1 << (8 * self.rel_width - 1)
        if not -limit <= rel < limit:
            raise OverflowError(
                f"rel{8 * self.rel_width} displacement {rel} out of range"
            )
        raw = rel & ((1 << (8 * self.rel_width)) - 1)
        self.encoding[self.rel_offset:self.rel_offset + self.rel_width] = (
            raw.to_bytes(self.rel_width, "little")
        )
