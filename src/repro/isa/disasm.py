"""Textual disassembler for the synthetic ISA.

Renders byte windows as objdump-style listings -- used by the examples,
by failing-test diagnostics, and for eyeballing shadow regions.  The
semantic content is deliberately shallow (the ISA only models lengths
and branch behaviour), but addresses, bytes, mnemonics and branch
targets are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at


@dataclass(frozen=True)
class DisasmLine:
    """One rendered instruction (or an undecodable byte)."""

    pc: int
    raw: bytes
    text: str
    kind: BranchKind | None  # None for undecodable bytes

    def render(self, pc_width: int = 8) -> str:
        hex_bytes = self.raw.hex(" ")
        return f"{self.pc:#0{pc_width + 2}x}:  {hex_bytes:<24}  {self.text}"


def disassemble(code: bytes, start: int = 0, stop: int | None = None,
                base_pc: int = 0,
                skip_invalid: bool = False) -> list[DisasmLine]:
    """Linear-sweep disassembly of ``code[start:stop]``.

    ``base_pc`` is the virtual address of ``code[0]`` (so the first
    rendered pc is ``base_pc + start``).  Undecodable bytes become
    one-byte ``(bad)`` lines (and the sweep continues at the next byte),
    so hostile regions render fully; pass ``skip_invalid`` to stop at
    the first invalid byte instead.
    """
    stop = len(code) if stop is None else min(stop, len(code))
    lines: list[DisasmLine] = []
    offset = start
    while offset < stop:
        decoded = decode_at(code, offset, pc=base_pc + offset, limit=stop)
        if decoded is None:
            if skip_invalid:
                break
            lines.append(DisasmLine(
                pc=base_pc + offset, raw=code[offset:offset + 1],
                text="(bad)", kind=None))
            offset += 1
            continue
        text = decoded.mnemonic
        if decoded.target is not None:
            text = f"{text} {decoded.target:#x}"
        elif decoded.kind is BranchKind.RETURN:
            text = decoded.mnemonic
        lines.append(DisasmLine(
            pc=decoded.pc, raw=code[offset:offset + decoded.length],
            text=text, kind=decoded.kind))
        offset += decoded.length
    return lines


def format_listing(lines: list[DisasmLine], mark_branches: bool = True) -> str:
    """Multi-line listing; branches get a trailing marker."""
    rendered = []
    for line in lines:
        suffix = ""
        if mark_branches and line.kind is not None and line.kind.is_branch:
            suffix = f"   <-- {line.kind.value}"
        rendered.append(line.render() + suffix)
    return "\n".join(rendered)


def disassemble_line_region(image: bytes, base_address: int, line_pc: int,
                            entry_offset: int | None = None,
                            exit_offset: int | None = None,
                            line_size: int = 64) -> str:
    """Render one cache line, annotating shadow regions.

    ``entry_offset``/``exit_offset`` mark the executed region; bytes
    before the entry and after the exit are labelled as head/tail
    shadow, matching the paper's Figure 5.
    """
    start = line_pc - base_address
    lines = disassemble(image, start, start + line_size,
                        base_pc=base_address)
    rendered = []
    for line in lines:
        offset = line.pc - line_pc
        zone = "exec"
        if entry_offset is not None and offset < entry_offset:
            zone = "HEAD shadow"
        elif exit_offset is not None and offset >= exit_offset:
            zone = "TAIL shadow"
        rendered.append(f"[{zone:>11}] {line.render()}")
    return "\n".join(rendered)
