"""Synthetic x86-like variable-length ISA.

This package is the machine-code substrate for the Skia reproduction.  It
defines an instruction encoding with the three properties that make shadow
branch decoding interesting on real x86:

* instructions are 1-15 bytes long (prefixes, ModRM/SIB addressing bytes,
  displacements and immediates);
* the opcode space is dense but not total, so decoding from a wrong byte
  offset frequently yields a *valid but different* instruction stream, and
  occasionally an invalid one;
* direct branches (``jmp``/``call``/``jcc``) carry PC-relative immediates,
  so their targets are computable at decode time, while indirect branches
  are not, and ``ret`` is a single byte whose target comes from the return
  address stack.

The public surface is :class:`~repro.isa.decoder.Decoder` (byte stream ->
instructions), :class:`~repro.isa.encoder.Encoder` (instructions -> bytes)
and the :class:`~repro.isa.branch.BranchKind` taxonomy used throughout the
simulator.
"""

from repro.isa.branch import BranchKind
from repro.isa.instruction import DecodedInstruction, Instruction
from repro.isa.decoder import Decoder, decode_at, instruction_length
from repro.isa.encoder import Encoder

__all__ = [
    "BranchKind",
    "DecodedInstruction",
    "Instruction",
    "Decoder",
    "decode_at",
    "instruction_length",
    "Encoder",
]
