"""Branch taxonomy used across the simulator.

The categories mirror Section 2.4 of the paper.  Only *direct* branches and
returns are eligible for shadow decoding: their targets are computable from
the program counter and instruction bytes alone (or, for returns, from the
return address stack), without execution-time register state.
"""

from __future__ import annotations

import enum


class BranchKind(enum.Enum):
    """Classification of control-transfer instructions.

    ``NOT_BRANCH`` is included so that every decoded instruction carries a
    kind and callers never need a separate "is this a branch" sentinel.
    """

    NOT_BRANCH = "not_branch"
    DIRECT_COND = "DirectCond"
    DIRECT_UNCOND = "DirectUnCond"
    CALL = "Call"
    RETURN = "Return"
    INDIRECT_UNCOND = "IndirectUnCond"
    INDIRECT_CALL = "IndirectCall"

    @property
    def is_branch(self) -> bool:
        return self is not BranchKind.NOT_BRANCH

    @property
    def is_direct(self) -> bool:
        """True when the target is encoded in the instruction bytes."""
        return self in _DIRECT

    @property
    def is_indirect(self) -> bool:
        return self in _INDIRECT

    @property
    def is_conditional(self) -> bool:
        return self is BranchKind.DIRECT_COND

    @property
    def is_unconditional(self) -> bool:
        return self.is_branch and self is not BranchKind.DIRECT_COND

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL, BranchKind.INDIRECT_CALL)

    @property
    def is_return(self) -> bool:
        return self is BranchKind.RETURN

    @property
    def sbb_eligible(self) -> bool:
        """True when Skia's shadow decoder may capture this branch.

        Per Section 2.4, only branches whose target is determined from the
        PC plus an encoded offset (direct unconditional jumps and calls) or
        from recent calls (returns) are viable; conditional branches are
        excluded because the predictor would still need a direction, and
        indirect branches because the target needs register state.
        """
        return self in (BranchKind.DIRECT_UNCOND, BranchKind.CALL, BranchKind.RETURN)


_DIRECT = frozenset(
    {BranchKind.DIRECT_COND, BranchKind.DIRECT_UNCOND, BranchKind.CALL}
)
_INDIRECT = frozenset({BranchKind.INDIRECT_UNCOND, BranchKind.INDIRECT_CALL})

#: Branch kinds as reported in the paper's Figure 6 breakdown.
REPORTED_KINDS = (
    BranchKind.DIRECT_COND,
    BranchKind.DIRECT_UNCOND,
    BranchKind.CALL,
    BranchKind.RETURN,
    BranchKind.INDIRECT_UNCOND,
    BranchKind.INDIRECT_CALL,
)
