"""Byte-stream decoder (the honest one).

This decoder recovers instruction *lengths*, *branch kinds* and *direct
branch targets* from raw bytes -- exactly the capability the paper assumes
of the front-end predecoder and of Skia's Shadow Branch Decoder.  It never
consults ground-truth layout information, so decoding from a mid-
instruction offset behaves like real x86: it usually produces a valid but
different instruction, and sometimes fails on an invalid encoding.

``decode_at`` is the workhorse; :class:`Decoder` adds a small bounded
LRU memo keyed on (offset, limit), which matters because the Shadow
Branch Decoder re-decodes every offset of every head region (Index
Computation).
"""

from __future__ import annotations

from repro.caching import CacheStats, LRUCache
from repro.isa.branch import BranchKind
from repro.isa.instruction import DecodedInstruction
from repro.isa.opcodes import (
    MAX_INSTRUCTION_LENGTH,
    PRIMARY_MAP,
    SECONDARY_MAP,
    Format,
    ff_group_kind,
    modrm_tail_length,
)


def _sign_extend(value: int, width_bytes: int) -> int:
    bits = 8 * width_bytes
    sign_bit = 1 << (bits - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def decode_at(
    code: bytes | bytearray | memoryview,
    offset: int,
    pc: int | None = None,
    limit: int | None = None,
) -> DecodedInstruction | None:
    """Decode one instruction starting at ``code[offset]``.

    Parameters
    ----------
    code:
        The byte image (or any slice-able byte container).
    offset:
        Byte offset to start decoding at.
    pc:
        Virtual address of ``code[offset]``; defaults to ``offset``.
        Direct-branch targets are computed relative to this.
    limit:
        Offset one past the last byte that may be consumed (e.g. a cache
        line boundary during shadow decoding).  Instructions that would
        run past the limit decode to ``None``.

    Returns ``None`` for invalid encodings, truncated instructions, or
    prefix runs exceeding the 15-byte architectural limit.
    """
    end = len(code) if limit is None else min(limit, len(code))
    if offset < 0 or offset >= end:
        return None
    if pc is None:
        pc = offset

    cursor = offset
    # Consume prefixes.
    while True:
        if cursor >= end:
            return None
        if cursor - offset >= MAX_INSTRUCTION_LENGTH:
            return None
        byte = code[cursor]
        info = PRIMARY_MAP[byte]
        if info.format is not Format.PREFIX:
            break
        cursor += 1

    opcode_table = PRIMARY_MAP
    if info.format is Format.ESCAPE:
        cursor += 1
        if cursor >= end:
            return None
        byte = code[cursor]
        info = SECONDARY_MAP[byte]
        opcode_table = SECONDARY_MAP
    if info.format is Format.INVALID:
        return None
    cursor += 1  # past the opcode byte

    kind = info.kind
    mnemonic = info.mnemonic
    target: int | None = None

    if info.format in (Format.FIXED, Format.RET):
        cursor += info.imm_bytes
    elif info.format is Format.REL:
        if cursor + info.imm_bytes > end:
            return None
        raw = int.from_bytes(code[cursor:cursor + info.imm_bytes], "little")
        rel = _sign_extend(raw, info.imm_bytes)
        cursor += info.imm_bytes
        length = cursor - offset
        if length > MAX_INSTRUCTION_LENGTH:
            return None
        target = pc + length + rel
    elif info.format in (Format.MODRM, Format.GROUP_FF):
        if cursor >= end:
            return None
        modrm = code[cursor]
        sib = code[cursor + 1] if cursor + 1 < end else None
        tail = modrm_tail_length(modrm, sib)
        if tail is None:
            return None  # needed an SIB byte that is past the limit
        cursor += tail + info.imm_bytes
        if info.format is Format.GROUP_FF:
            kind = ff_group_kind(modrm)
            if kind is BranchKind.INDIRECT_CALL:
                mnemonic = "call r/m"
            elif kind is BranchKind.INDIRECT_UNCOND:
                mnemonic = "jmp r/m"
    else:  # pragma: no cover - formats are exhaustive
        raise AssertionError(f"unhandled format {info.format}")

    length = cursor - offset
    if length > MAX_INSTRUCTION_LENGTH or cursor > end:
        return None
    return DecodedInstruction(pc=pc, length=length, kind=kind,
                              target=target, mnemonic=mnemonic)


def instruction_length(
    code: bytes | bytearray | memoryview,
    offset: int,
    limit: int | None = None,
) -> int:
    """Length of the instruction at ``offset``; 0 when undecodable.

    The 0-for-invalid convention matches the paper's Figure 9, where the
    Index Computation phase records a zero for bytes at which no valid
    instruction starts.
    """
    decoded = decode_at(code, offset, limit=limit)
    return 0 if decoded is None else decoded.length


#: Default bound for the per-Decoder memo.  Long sweeps decode hundreds
#: of programs through one Decoder; an unbounded dict grew without limit,
#: while hot (offset, limit) pairs recur within a small working set.
DEFAULT_MEMO_SIZE = 32_768

_MEMO_MISS = object()


class Decoder:
    """Decoder with a bounded per-instance memo for repeated decodes.

    The Shadow Branch Decoder calls :meth:`decode` for every byte offset
    of every head region; within one cache line the same (line, offset)
    pair recurs constantly, so memoising on ``(id-free key, offset)`` is a
    large win.  The memo is an LRU bounded at ``memo_size`` entries so
    long experiment sweeps cannot grow it without limit; hit/miss/eviction
    counters feed the component-throughput benchmark.
    """

    def __init__(self, code: bytes | bytearray | memoryview, base_pc: int = 0,
                 memo_size: int | None = DEFAULT_MEMO_SIZE):
        self._code = bytes(code)
        self._base_pc = base_pc
        self._memo = LRUCache(maxsize=memo_size)

    @property
    def code(self) -> bytes:
        return self._code

    @property
    def base_pc(self) -> int:
        return self._base_pc

    @property
    def memo_hits(self) -> int:
        return self._memo.hits

    @property
    def memo_misses(self) -> int:
        return self._memo.misses

    @property
    def memo_evictions(self) -> int:
        return self._memo.evictions

    @property
    def memo_stats(self) -> CacheStats:
        return self._memo.stats

    def decode(self, offset: int, limit: int | None = None) -> DecodedInstruction | None:
        key = (offset, limit)
        cached = self._memo.get(key, _MEMO_MISS)
        if cached is not _MEMO_MISS:
            return cached
        result = decode_at(self._code, offset, pc=self._base_pc + offset, limit=limit)
        self._memo[key] = result
        return result

    def decode_pc(self, pc: int, limit_pc: int | None = None) -> DecodedInstruction | None:
        """Decode by virtual address rather than image offset."""
        limit = None if limit_pc is None else limit_pc - self._base_pc
        return self.decode(pc - self._base_pc, limit=limit)

    def length(self, offset: int, limit: int | None = None) -> int:
        decoded = self.decode(offset, limit)
        return 0 if decoded is None else decoded.length

    def linear_sweep(self, start: int, stop: int) -> list[DecodedInstruction]:
        """Decode consecutively from ``start`` until ``stop`` or failure."""
        out: list[DecodedInstruction] = []
        offset = start
        while offset < stop:
            decoded = self.decode(offset, limit=stop)
            if decoded is None:
                break
            out.append(decoded)
            offset += decoded.length
        return out
