"""Opcode space for the synthetic x86-like ISA.

The tables below drive both the encoder and the (length) decoder.  The map
is deliberately modelled on real x86-64: the same prefix bytes, the same
branch opcodes (``0x70-0x7F`` Jcc rel8, ``0xE8`` call rel32, ``0xE9``/``0xEB``
jmp, ``0xC3``/``0xC2`` ret, ``0xFF /2 /3 /4 /5`` indirect, ``0x0F 0x8x`` Jcc
rel32), the real ModRM/SIB displacement rules, and a comparable set of
*invalid* primary opcodes (the bytes x86-64 dropped).  Non-branch opcodes
are assigned formats with realistic lengths but are not semantically
modelled -- the simulator only ever needs lengths and branch behaviour.

Formats
-------
Each opcode maps to an :class:`OpcodeInfo` with a :class:`Format`:

* ``FIXED``     -- opcode plus ``imm_bytes`` of immediate, no ModRM.
* ``MODRM``     -- opcode + ModRM (+ SIB + displacement) + ``imm_bytes``.
* ``REL``       -- PC-relative branch with ``imm_bytes`` of signed offset.
* ``RET``       -- return; ``imm_bytes`` of popped-bytes immediate.
* ``GROUP_FF``  -- the indirect/misc group: branchness depends on ModRM.reg.
* ``ESCAPE``    -- 0x0F two-byte escape.
* ``PREFIX``    -- legacy/REX prefix byte.
* ``INVALID``   -- undefined encoding; decode fails here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.branch import BranchKind

#: Hard architectural limit, as on x86.
MAX_INSTRUCTION_LENGTH = 15


class Format(enum.Enum):
    FIXED = "fixed"
    MODRM = "modrm"
    REL = "rel"
    RET = "ret"
    GROUP_FF = "group_ff"
    ESCAPE = "escape"
    PREFIX = "prefix"
    INVALID = "invalid"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static decode information for one opcode byte (or escape pair)."""

    format: Format
    imm_bytes: int = 0
    kind: BranchKind = BranchKind.NOT_BRANCH
    mnemonic: str = "op"

    @property
    def is_branch(self) -> bool:
        return self.kind.is_branch or self.format is Format.GROUP_FF


#: Legacy prefixes plus REX (0x40-0x4F), treated uniformly as one-byte
#: prefixes for length purposes.
PREFIX_BYTES = frozenset(
    [0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0x66, 0x67, 0xF0, 0xF2, 0xF3]
    + list(range(0x40, 0x50))
)

#: Primary opcodes that are undefined in this ISA (mirrors bytes that
#: x86-64 invalidated).  Hitting one of these mid-shadow-decode kills the
#: candidate path.
INVALID_PRIMARY = frozenset(
    [0x06, 0x07, 0x0E, 0x16, 0x17, 0x1E, 0x1F, 0x27, 0x2F, 0x37, 0x3F,
     0x60, 0x61, 0x62, 0x82, 0x9A, 0xD4, 0xD5, 0xD6, 0xEA, 0xF1]
)


def _build_primary_map() -> dict[int, OpcodeInfo]:
    table: dict[int, OpcodeInfo] = {}

    def put(byte: int, info: OpcodeInfo) -> None:
        table[byte] = info

    # Prefixes and escape.
    for byte in PREFIX_BYTES:
        put(byte, OpcodeInfo(Format.PREFIX, mnemonic="prefix"))
    put(0x0F, OpcodeInfo(Format.ESCAPE, mnemonic="escape"))

    # ALU rows 0x00..0x3F: op r/m,r ; op r,r/m ; op al,imm8 ; op eax,imm32.
    alu_names = ["add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"]
    for row, name in enumerate(alu_names):
        base = row * 8
        for offset in range(4):
            byte = base + offset
            if byte not in table and byte not in INVALID_PRIMARY:
                put(byte, OpcodeInfo(Format.MODRM, mnemonic=name))
        if base + 4 not in INVALID_PRIMARY:
            put(base + 4, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic=f"{name} al,imm8"))
        if base + 5 not in INVALID_PRIMARY:
            put(base + 5, OpcodeInfo(Format.FIXED, imm_bytes=4, mnemonic=f"{name} eax,imm32"))

    # 0x50-0x5F push/pop reg: one byte.
    for byte in range(0x50, 0x60):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="push/pop"))

    # 0x63 movsxd, 0x68 push imm32, 0x69 imul r,r/m,imm32, 0x6A push imm8,
    # 0x6B imul r,r/m,imm8.
    put(0x63, OpcodeInfo(Format.MODRM, mnemonic="movsxd"))
    put(0x68, OpcodeInfo(Format.FIXED, imm_bytes=4, mnemonic="push imm32"))
    put(0x69, OpcodeInfo(Format.MODRM, imm_bytes=4, mnemonic="imul imm32"))
    put(0x6A, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic="push imm8"))
    put(0x6B, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="imul imm8"))
    # String ops 0x6C-0x6F.
    for byte in range(0x6C, 0x70):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="ins/outs"))

    # 0x70-0x7F: Jcc rel8.
    for byte in range(0x70, 0x80):
        put(byte, OpcodeInfo(Format.REL, imm_bytes=1,
                             kind=BranchKind.DIRECT_COND, mnemonic="jcc rel8"))

    # 0x80/0x81/0x83 group-1 imm; 0x84-0x8B test/xchg/mov; 0x8D lea;
    # 0x8F pop r/m.
    put(0x80, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="grp1 imm8"))
    put(0x81, OpcodeInfo(Format.MODRM, imm_bytes=4, mnemonic="grp1 imm32"))
    put(0x83, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="grp1 imm8s"))
    for byte in range(0x84, 0x8C):
        put(byte, OpcodeInfo(Format.MODRM, mnemonic="test/xchg/mov"))
    put(0x8D, OpcodeInfo(Format.MODRM, mnemonic="lea"))
    put(0x8E, OpcodeInfo(Format.MODRM, mnemonic="mov sreg"))
    put(0x8F, OpcodeInfo(Format.MODRM, mnemonic="pop r/m"))

    # 0x90-0x9F one-byte ops (nop/xchg/cwde/...), except 0x9A invalid.
    for byte in range(0x90, 0xA0):
        if byte not in INVALID_PRIMARY:
            put(byte, OpcodeInfo(Format.FIXED, mnemonic="nop/xchg"))

    # 0xA0-0xA3 mov moffs (8-byte absolute on x86-64).
    for byte in range(0xA0, 0xA4):
        put(byte, OpcodeInfo(Format.FIXED, imm_bytes=8, mnemonic="mov moffs"))
    for byte in range(0xA4, 0xA8):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="movs/cmps"))
    put(0xA8, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic="test al,imm8"))
    put(0xA9, OpcodeInfo(Format.FIXED, imm_bytes=4, mnemonic="test eax,imm32"))
    for byte in range(0xAA, 0xB0):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="stos/lods/scas"))

    # 0xB0-0xB7 mov r8,imm8 ; 0xB8-0xBF mov r32,imm32.
    for byte in range(0xB0, 0xB8):
        put(byte, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic="mov r8,imm8"))
    for byte in range(0xB8, 0xC0):
        put(byte, OpcodeInfo(Format.FIXED, imm_bytes=4, mnemonic="mov r32,imm32"))

    # 0xC0/0xC1 shift imm8; 0xC2/0xC3 ret; 0xC6/0xC7 mov imm.
    put(0xC0, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="shift imm8"))
    put(0xC1, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="shift imm8"))
    put(0xC2, OpcodeInfo(Format.RET, imm_bytes=2,
                         kind=BranchKind.RETURN, mnemonic="ret imm16"))
    put(0xC3, OpcodeInfo(Format.RET, kind=BranchKind.RETURN, mnemonic="ret"))
    put(0xC6, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="mov r/m,imm8"))
    put(0xC7, OpcodeInfo(Format.MODRM, imm_bytes=4, mnemonic="mov r/m,imm32"))
    put(0xC8, OpcodeInfo(Format.FIXED, imm_bytes=3, mnemonic="enter"))
    put(0xC9, OpcodeInfo(Format.FIXED, mnemonic="leave"))
    put(0xCA, OpcodeInfo(Format.RET, imm_bytes=2,
                         kind=BranchKind.RETURN, mnemonic="retf imm16"))
    put(0xCB, OpcodeInfo(Format.RET, kind=BranchKind.RETURN, mnemonic="retf"))
    put(0xCC, OpcodeInfo(Format.FIXED, mnemonic="int3"))
    put(0xCD, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic="int imm8"))
    put(0xCE, OpcodeInfo(Format.FIXED, mnemonic="into"))
    put(0xCF, OpcodeInfo(Format.FIXED, mnemonic="iret"))

    # 0xD0-0xD3 shifts; 0xD7 xlat; 0xD8-0xDF x87 with ModRM.
    for byte in range(0xD0, 0xD4):
        put(byte, OpcodeInfo(Format.MODRM, mnemonic="shift"))
    put(0xD7, OpcodeInfo(Format.FIXED, mnemonic="xlat"))
    for byte in range(0xD8, 0xE0):
        put(byte, OpcodeInfo(Format.MODRM, mnemonic="x87"))

    # 0xE0-0xE3 loop/jcxz rel8 (conditional direct).
    for byte in range(0xE0, 0xE4):
        put(byte, OpcodeInfo(Format.REL, imm_bytes=1,
                             kind=BranchKind.DIRECT_COND, mnemonic="loop rel8"))
    # 0xE4-0xE7 in/out imm8.
    for byte in range(0xE4, 0xE8):
        put(byte, OpcodeInfo(Format.FIXED, imm_bytes=1, mnemonic="in/out"))
    put(0xE8, OpcodeInfo(Format.REL, imm_bytes=4,
                         kind=BranchKind.CALL, mnemonic="call rel32"))
    put(0xE9, OpcodeInfo(Format.REL, imm_bytes=4,
                         kind=BranchKind.DIRECT_UNCOND, mnemonic="jmp rel32"))
    put(0xEB, OpcodeInfo(Format.REL, imm_bytes=1,
                         kind=BranchKind.DIRECT_UNCOND, mnemonic="jmp rel8"))
    for byte in range(0xEC, 0xF0):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="in/out dx"))

    put(0xF4, OpcodeInfo(Format.FIXED, mnemonic="hlt"))
    put(0xF5, OpcodeInfo(Format.FIXED, mnemonic="cmc"))
    put(0xF6, OpcodeInfo(Format.MODRM, imm_bytes=1, mnemonic="grp3 imm8"))
    put(0xF7, OpcodeInfo(Format.MODRM, imm_bytes=4, mnemonic="grp3 imm32"))
    for byte in range(0xF8, 0xFE):
        put(byte, OpcodeInfo(Format.FIXED, mnemonic="flags"))
    put(0xFE, OpcodeInfo(Format.MODRM, mnemonic="inc/dec r/m8"))
    put(0xFF, OpcodeInfo(Format.GROUP_FF, mnemonic="grp5"))

    for byte in INVALID_PRIMARY:
        put(byte, OpcodeInfo(Format.INVALID, mnemonic="(bad)"))

    # Any byte not yet assigned decodes as a one-byte op, keeping the map
    # dense the way x86's is.
    for byte in range(256):
        table.setdefault(byte, OpcodeInfo(Format.FIXED, mnemonic="op"))
    return table


def _build_secondary_map() -> dict[int, OpcodeInfo]:
    """The 0x0F xx two-byte map."""
    table: dict[int, OpcodeInfo] = {}

    # Jcc rel32.
    for byte in range(0x80, 0x90):
        table[byte] = OpcodeInfo(Format.REL, imm_bytes=4,
                                 kind=BranchKind.DIRECT_COND,
                                 mnemonic="jcc rel32")
    # setcc / cmov / movzx / movsx / sse moves: ModRM forms.
    modrm_ranges = [
        (0x10, 0x18), (0x28, 0x2A), (0x2E, 0x30), (0x40, 0x50),
        (0x51, 0x60), (0x6E, 0x70), (0x7E, 0x80), (0x90, 0xA0),
        (0xA3, 0xA4), (0xAB, 0xAC), (0xAF, 0xB0), (0xB0, 0xB2),
        (0xB6, 0xB8), (0xBE, 0xC0), (0xC0, 0xC2),
    ]
    for lo, hi in modrm_ranges:
        for byte in range(lo, hi):
            table.setdefault(byte, OpcodeInfo(Format.MODRM, mnemonic="0f op"))
    table[0x1F] = OpcodeInfo(Format.MODRM, mnemonic="nop r/m")
    table[0x05] = OpcodeInfo(Format.FIXED, mnemonic="syscall")
    table[0x0B] = OpcodeInfo(Format.FIXED, mnemonic="ud2")
    table[0x31] = OpcodeInfo(Format.FIXED, mnemonic="rdtsc")
    table[0xA2] = OpcodeInfo(Format.FIXED, mnemonic="cpuid")
    table[0x0D] = OpcodeInfo(Format.MODRM, mnemonic="prefetch")
    table[0x18] = OpcodeInfo(Format.MODRM, mnemonic="hint nop")
    table[0xC8] = OpcodeInfo(Format.FIXED, mnemonic="bswap")

    # Unassigned secondary opcodes are invalid -- this is the main source
    # of head-decode path elimination.
    for byte in range(256):
        table.setdefault(byte, OpcodeInfo(Format.INVALID, mnemonic="(bad 0f)"))
    return table


PRIMARY_MAP: dict[int, OpcodeInfo] = _build_primary_map()
SECONDARY_MAP: dict[int, OpcodeInfo] = _build_secondary_map()

#: ModRM.reg values in the 0xFF group that are control transfers.
FF_REG_INDIRECT_CALL = frozenset({2, 3})
FF_REG_INDIRECT_JMP = frozenset({4, 5})


def ff_group_kind(modrm: int) -> BranchKind:
    """Branch kind of an ``0xFF`` group instruction given its ModRM byte."""
    reg = (modrm >> 3) & 0x7
    if reg in FF_REG_INDIRECT_CALL:
        return BranchKind.INDIRECT_CALL
    if reg in FF_REG_INDIRECT_JMP:
        return BranchKind.INDIRECT_UNCOND
    return BranchKind.NOT_BRANCH


def modrm_tail_length(modrm: int, sib: int | None) -> int | None:
    """Bytes that follow the opcode for a ModRM operand (incl. the ModRM).

    Implements the 32/64-bit addressing rules: SIB when rm==4 and mod!=3;
    disp32 for mod==0/rm==5 (RIP-relative) and for SIB base==5 with mod==0.
    Returns ``None`` when an SIB byte is required to know the length but
    ``sib`` was not supplied (caller must fetch it first).
    """
    mod = (modrm >> 6) & 0x3
    rm = modrm & 0x7
    if mod == 3:
        return 1
    length = 1
    if rm == 4:
        if sib is None:
            return None
        length += 1
        base = sib & 0x7
        if mod == 0 and base == 5:
            return length + 4
    if mod == 1:
        return length + 1
    if mod == 2:
        return length + 4
    # mod == 0
    if rm == 5:
        return length + 4
    return length
