"""``python -m repro`` entry point."""

import signal
import sys

from repro.cli import main

# Behave like a well-mannered CLI when piped into `head` etc.
try:
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
    pass

sys.exit(main())
