"""Opt-in structured event trace.

A bounded ring buffer of event dicts.  The simulator emits nothing
unless a trace is attached, so the default (untraced) hot path pays only
a ``None`` check per potential event site.  When enabled, each event
records the trace sequence number, the record index of the block being
processed, an event kind, and kind-specific fields:

========== ==========================================================
kind       fields
========== ==========================================================
``btb``    ``pc``, ``hit``
``sbb``    ``pc``, ``hit``, ``which`` (``"u"``/``"r"``/``None``)
``sbd``    ``side`` (``"head"``/``"tail"``), ``pc``, ``branches``,
           ``discarded``, ``valid_paths`` (head only)
``resteer````pc``, ``stage`` (``"decode"``/``"exec"``), ``cause``,
           ``latency`` (cycles between IAG allocation and restart)
========== ==========================================================

The buffer keeps the most recent ``capacity`` events; ``emitted`` counts
every emission so ``dropped`` makes truncation explicit in dumps.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterator


class EventTrace:
    """Ring-buffered JSONL event sink."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0
        #: Record index of the block currently being simulated; the
        #: engine updates this once per record so per-component emitters
        #: need not thread it through.
        self.record_index: int | None = None

    def emit(self, kind: str, **fields) -> None:
        event = {"seq": self.emitted, "kind": kind}
        if self.record_index is not None:
            event["record"] = self.record_index
        event.update(fields)
        self._events.append(event)
        self.emitted += 1

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[dict]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the retained events, one JSON object per line.

        A leading header object records capacity/emitted/dropped so a
        truncated dump is self-describing.
        """
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            header = {"kind": "trace_header", "capacity": self.capacity,
                      "emitted": self.emitted, "dropped": self.dropped}
            handle.write(json.dumps(header) + "\n")
            for event in self._events:
                handle.write(json.dumps(event) + "\n")
        return path
