"""Opt-in structured event trace.

A bounded ring buffer of event dicts.  The simulator emits nothing
unless a trace is attached, so the default (untraced) hot path pays only
a ``None`` check per potential event site.  When enabled, each event
records the trace sequence number, the record index of the block being
processed, an event kind, and kind-specific fields:

========== ==========================================================
kind       fields
========== ==========================================================
``btb``    ``pc``, ``hit``, ``branch_kind``, ``resident`` (branch
           line L1I-resident at lookup -- the Figure 1/15 gate)
``sbb``    ``pc``, ``hit``, ``which`` (``"u"``/``"r"``/``None``)
``comparator`` ``pc``, ``hit`` (Section 7.1 baseline probe on a BTB
           miss; emitted only when a comparator design is enabled)
``sbd``    ``side`` (``"head"``/``"tail"``), ``pc``, ``branches``,
           ``discarded``, ``valid_paths`` (head only)
``resteer````pc``, ``stage`` (``"decode"``/``"exec"``), ``cause``,
           ``latency`` (cycles between IAG allocation and restart)
========== ==========================================================

The buffer keeps the most recent ``capacity`` events; ``emitted`` counts
every emission so ``dropped`` makes truncation explicit in dumps.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable, Iterator


class DroppedEventsWarning(UserWarning):
    """A trace source lost events before a reader could consume them.

    Raised (as a warning) by readers of ring-buffered dumps whose header
    records ``dropped > 0``: downstream rollups built from such a stream
    silently under-count unless the loss is surfaced.
    """


class EventTrace:
    """Ring-buffered JSONL event sink."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0
        #: Record index of the block currently being simulated; the
        #: engine updates this once per record so per-component emitters
        #: need not thread it through.
        self.record_index: int | None = None
        #: Live observers called with every event *before* ring
        #: truncation -- a sink sees the complete stream even when the
        #: ring drops, so aggregations built on sinks stay exact.
        self._sinks: list[Callable[[dict], None]] = []

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Register a live observer for every subsequent emission."""
        self._sinks.append(sink)

    def emit(self, kind: str, **fields) -> None:
        event = {"seq": self.emitted, "kind": kind}
        if self.record_index is not None:
            event["record"] = self.record_index
        event.update(fields)
        self._events.append(event)
        self.emitted += 1
        for sink in self._sinks:
            sink(event)

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[dict]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        # Reset the record stamp too: a cleared trace reused on another
        # simulator must not stamp its first events with the previous
        # run's final record index.
        self.record_index = None

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the retained events, one JSON object per line.

        A leading header object records capacity/emitted/dropped so a
        truncated dump is self-describing.
        """
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            header = {"kind": "trace_header", "capacity": self.capacity,
                      "emitted": self.emitted, "dropped": self.dropped}
            handle.write(json.dumps(header) + "\n")
            for event in self._events:
                handle.write(json.dumps(event) + "\n")
        return path
