"""Host-side section profiler: where does the wall-clock go?

The simulator's own metrics (:mod:`repro.obs.registry`) count *simulated*
events; this module times the *host* Python code that produces them --
the experiment runner, the persistent store, the shadow-decode memo
misses -- so ``repro bench`` can report where a cell's wall-clock is
actually spent.

Design constraints mirror the rest of ``repro.obs``:

* **Near-zero cost when disabled.**  ``section(name)`` on a disabled
  profiler returns a shared no-op context manager; instrumented call
  sites pay one attribute check and an empty ``with`` block.  Hot-path
  call sites (the SBD) only open sections on memo *misses*, which are
  bounded by the number of distinct decode boundaries.
* **Nesting-aware.**  Sections stack; each section accumulates both
  *total* (inclusive) and *exclusive* (total minus time spent in child
  sections) nanoseconds, so ``harness.simulate`` minus ``sbd.*`` is the
  engine's own share.  Re-entering a section that is already on the
  stack counts each invocation's elapsed time, so recursive totals can
  exceed wall-clock; exclusive time stays disjoint.
* **Process-local.**  The module-level :data:`PROFILER` is what the
  harness threads through; worker processes of a parallel run keep their
  own (discarded) instances, so profiles of ``jobs=1`` runs are exact
  and parallel runs profile the dispatch layer.

Enable globally with ``REPRO_PROFILE=1`` or programmatically via
``PROFILER.enabled = True``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class SectionStats:
    """Accumulated timings of one named section."""

    calls: int = 0
    total_ns: int = 0
    child_ns: int = 0

    @property
    def exclusive_ns(self) -> int:
        return self.total_ns - self.child_ns

    def as_dict(self) -> dict[str, int]:
        return {"calls": self.calls, "total_ns": self.total_ns,
                "exclusive_ns": self.exclusive_ns}


class _NullSection:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL = _NullSection()


class _Timer:
    """One live section entry; created only when the profiler is on."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "SectionProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Timer":
        self._profiler._push(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._pop()


class SectionProfiler:
    """Nesting context-manager section timer over ``perf_counter_ns``.

    ``clock`` is injectable (a zero-argument callable returning integer
    nanoseconds) so the exclusive-time arithmetic is testable without
    sleeping.
    """

    def __init__(self, enabled: bool = False,
                 clock: Callable[[], int] = time.perf_counter_ns):
        self.enabled = enabled
        self._clock = clock
        self._sections: dict[str, SectionStats] = {}
        # Stack frames: [name, start_ns, child_ns_accumulated].
        self._stack: list[list] = []
        #: Optional live observer called as ``sink(name, start_ns,
        #: elapsed_ns)`` on every section pop.  This is how the span
        #: recorder (:mod:`repro.obs.spans`) sees sections with the
        #: *exact* nanoseconds the profiler accumulates, making
        #: span-vs-profiler conservation an identity rather than an
        #: approximation.  ``None`` (the default) costs one attribute
        #: check per pop -- and pops only happen while enabled.
        self.sink: Callable[[str, int, int], None] | None = None

    # -- the instrumentation surface ------------------------------------

    def section(self, name: str):
        """A context manager timing ``name`` (no-op when disabled)."""
        if not self.enabled:
            return _NULL
        return _Timer(self, name)

    def _push(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0])

    def _pop(self) -> None:
        name, start, child_ns = self._stack.pop()
        elapsed = self._clock() - start
        stats = self._sections.get(name)
        if stats is None:
            stats = self._sections[name] = SectionStats()
        stats.calls += 1
        stats.total_ns += elapsed
        stats.child_ns += child_ns
        if self._stack:
            self._stack[-1][2] += elapsed
        if self.sink is not None:
            self.sink(name, start, elapsed)

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict[str, SectionStats]:
        """Accumulated per-section stats (live references)."""
        return dict(self._sections)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """JSON-safe ``{section: {calls, total_ns, exclusive_ns}}``."""
        return {name: stats.as_dict()
                for name, stats in sorted(self._sections.items())}

    def reset(self) -> None:
        """Drop all accumulated sections (open sections keep running)."""
        self._sections.clear()

    def render(self, title: str | None = None) -> str:
        """ASCII table sorted by exclusive time, biggest first.

        Alongside the raw nanoseconds each row shows human-readable
        seconds and the section's share of the total exclusive time, so
        a ``REPRO_PROFILE`` report answers "where did the wall-clock
        go?" without mental unit conversion.
        """
        lines = [title] if title else []
        ordered = sorted(self._sections.items(),
                         key=lambda item: -item[1].exclusive_ns)
        if not ordered:
            lines.append("(no sections recorded)")
            return "\n".join(lines)
        exclusive_sum = sum(stats.exclusive_ns for _, stats in ordered)
        width = max(len(name) for name, _ in ordered)
        lines.append(f"{'section'.ljust(width)}  {'calls':>8} "
                     f"{'total_s':>9} {'excl_s':>9} {'excl%':>6} "
                     f"{'total_ns':>14} {'excl_ns':>14}")
        for name, stats in ordered:
            share = (100.0 * stats.exclusive_ns / exclusive_sum
                     if exclusive_sum else 0.0)
            lines.append(
                f"{name.ljust(width)}  {stats.calls:>8} "
                f"{stats.total_ns / 1e9:>9.3f} "
                f"{stats.exclusive_ns / 1e9:>9.3f} "
                f"{share:>5.1f}% "
                f"{stats.total_ns:>14} "
                f"{stats.exclusive_ns:>14}")
        return "\n".join(lines)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").lower() in (
        "1", "true", "yes", "on")


#: The process-wide profiler the harness and hot paths thread through.
PROFILER = SectionProfiler(enabled=_env_enabled())


def profile(name: str):
    """Shorthand: a section on the module-level :data:`PROFILER`."""
    return PROFILER.section(name)
