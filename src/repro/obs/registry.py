"""The metrics registry: named counters, gauges and histograms.

Components register a :class:`Scope` (a dotted-name namespace) and
describe their metrics once at construction time; nothing is recorded on
the simulation hot path.  Counters that components already maintain as
plain integer attributes are exposed as *gauges*: callables sampled only
when a snapshot is taken, so registering costs one closure and zero
per-event work.

A **snapshot** is a flat ``{dotted_name: number}`` dict -- trivially
JSON-serialisable, diffable and mergeable, which is what the persistent
result store and the ``repro stats`` CLI traffic in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping


@dataclass
class Histogram:
    """A power-of-two bucketed histogram of non-negative samples.

    Bucket ``i`` counts samples in ``[2**(i-1), 2**i)`` (bucket 0 counts
    samples < 1).  Tracks count/total/min/max exactly; the buckets give
    the shape without storing samples.
    """

    buckets: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def record(self, value: float) -> None:
        index = 0
        scaled = value
        while scaled >= 1 and index < 64:
            scaled /= 2
            index += 1
        while len(self.buckets) <= index:
            self.buckets.append(0)
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_into(self, out: dict[str, float], prefix: str) -> None:
        out[f"{prefix}.count"] = self.count
        out[f"{prefix}.total"] = self.total
        out[f"{prefix}.mean"] = self.mean
        if self.count:
            out[f"{prefix}.min"] = self.minimum
            out[f"{prefix}.max"] = self.maximum
        for index, bucket in enumerate(self.buckets):
            if bucket:
                out[f"{prefix}.bucket_lt_{1 << index}"] = bucket


class Scope:
    """One component's namespace inside the registry."""

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def gauge(self, name: str, sample: Callable[[], float]) -> None:
        """Register a lazily-sampled value (e.g. an existing counter
        attribute or an occupancy method)."""
        self._registry._gauges[f"{self.name}.{name}"] = sample

    def histogram(self, name: str) -> Histogram:
        key = f"{self.name}.{name}"
        histogram = self._registry._histograms.get(key)
        if histogram is None:
            histogram = Histogram()
            self._registry._histograms[key] = histogram
        return histogram

    def scope(self, name: str) -> "Scope":
        """A nested sub-scope (``sbb`` -> ``sbb.u``)."""
        return Scope(self._registry, f"{self.name}.{name}")


class MetricsRegistry:
    """All scopes of one simulator instance."""

    def __init__(self) -> None:
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}

    def scope(self, name: str) -> Scope:
        return Scope(self, name)

    def snapshot(self) -> dict[str, float]:
        """Sample every gauge and histogram into one flat dict."""
        out: dict[str, float] = {}
        for name, sample in self._gauges.items():
            out[name] = sample()
        for name, histogram in self._histograms.items():
            histogram.snapshot_into(out, name)
        return out

    def to_prometheus(self, labels: Mapping[str, str] | None = None) -> str:
        """This registry's snapshot in Prometheus text exposition format."""
        return snapshot_to_prometheus(self.snapshot(), labels=labels)


# ----------------------------------------------------------------------
# Snapshot algebra: diff / merge / render / persist
# ----------------------------------------------------------------------

def diff_snapshots(before: Mapping[str, float],
                   after: Mapping[str, float]) -> dict[str, tuple]:
    """Changed keys only: ``{name: (before, after)}``.

    Keys missing on one side appear with ``None`` for that side, so a
    diff between snapshots of different schema versions is explicit
    rather than silently partial.
    """
    out: dict[str, tuple] = {}
    for key in sorted(set(before) | set(after)):
        a, b = before.get(key), after.get(key)
        if a != b:
            out[key] = (a, b)
    return out


def merge_snapshots(snapshots: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum counters across snapshots (aggregate of parallel cells).

    Summation is the right aggregation for every counter-like metric;
    ratio metrics should be recomputed from the merged counters, never
    merged directly.
    """
    out: dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            out[key] = out.get(key, 0) + value
    return out


def render_snapshot(snapshot: Mapping[str, float],
                    title: str | None = None) -> str:
    """Group dotted names by component and format as an ASCII listing."""
    groups: dict[str, list[tuple[str, float]]] = {}
    for key in sorted(snapshot):
        component, _, metric = key.partition(".")
        groups.setdefault(component, []).append((metric or component,
                                                 snapshot[key]))
    lines = []
    if title:
        lines.append(title)
    for component, metrics in groups.items():
        lines.append(f"[{component}]")
        width = max(len(name) for name, _ in metrics)
        for name, value in metrics:
            if isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.4f}"
            else:
                rendered = str(int(value))
            lines.append(f"  {name.ljust(width)}  {rendered}")
    return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier.

    Every character outside ``[a-zA-Z0-9_]`` becomes ``_`` and the
    result is prefixed with ``repro_`` (which also guarantees a legal
    leading character): ``sbd.head.window_hits`` ->
    ``repro_sbd_head_window_hits``.
    """
    sanitised = "".join(ch if ch.isascii() and (ch.isalnum() or ch == "_")
                        else "_" for ch in name)
    return f"repro_{sanitised}"


def _prometheus_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def snapshot_to_prometheus(snapshot: Mapping[str, float],
                           labels: Mapping[str, str] | None = None) -> str:
    """Render a metric snapshot in Prometheus text exposition format.

    Everything is exported as a ``gauge``: snapshots are point-in-time
    samples of counters that reset per cell, so declaring them Prometheus
    counters (which must be monotonic across scrapes) would be a lie.
    ``labels`` (e.g. ``{"workload": "fig14", "seed": "7"}``) are attached
    to every sample; label values are escaped per the exposition format.
    This is the bridge a future HTTP service scrapes -- the format is the
    stable contract, not the transport.
    """
    label_str = ""
    if labels:
        rendered = []
        for key in sorted(labels):
            value = (str(labels[key]).replace("\\", r"\\")
                     .replace('"', r'\"').replace("\n", r"\n"))
            rendered.append(f'{_prometheus_name(key)[len("repro_"):]}'
                            f'="{value}"')
        label_str = "{" + ",".join(rendered) + "}"
    lines = []
    for name in sorted(snapshot):
        metric = _prometheus_name(name)
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_str} "
                     f"{_prometheus_value(snapshot[name])}")
    return "\n".join(lines) + ("\n" if lines else "")


def save_snapshot(path: str | Path, snapshot: Mapping[str, float],
                  meta: Mapping[str, object] | None = None) -> Path:
    """Persist a snapshot (plus free-form metadata) as JSON."""
    path = Path(path)
    payload = {"meta": dict(meta or {}), "metrics": dict(snapshot)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> tuple[dict[str, float], dict]:
    """Load a snapshot written by :func:`save_snapshot`.

    Also accepts a bare ``{name: value}`` mapping, so store payloads and
    hand-written fixtures load the same way.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        return dict(payload["metrics"]), dict(payload.get("meta", {}))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a metric snapshot")
    return dict(payload), {}
