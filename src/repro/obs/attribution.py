"""Per-branch / per-cache-line attribution of front-end events.

The metrics registry answers *how much* (one number per counter); this
module answers *who*: which static branches cause the BTB misses, which
of them Skia rescues (and through which SBB half), which cache lines'
shadow bytes the SBD actually decodes, and where the resteer cycles go.
That is the per-PC form of the paper's central claims -- the ~75%
shadow-resident BTB-miss fraction of Figures 1/15 and the rescued-branch
population behind Figure 14 -- made inspectable and diffable per branch
instead of as one geomean.

:class:`AttributionAggregator` is a pure *sink* over the structured
event stream of :mod:`repro.obs.trace` (``btb`` / ``sbb`` /
``comparator`` / ``sbd`` / ``resteer`` events).  Attach it live via
``FrontEndSimulator.attach_attribution`` -- sinks observe every emission
regardless of the ring buffer's capacity, so live attribution never
drops events -- or rebuild it offline from a JSONL dump with
:meth:`AttributionAggregator.from_trace_jsonl` (which warns when the
dump's header records drops, because a truncated dump under-attributes).

Events carry the record index of the block being replayed, so the
aggregator applies the same warm-up gate as ``SimStats``: only events
with ``record >= warmup`` are counted.  The rollup sums are therefore
*exactly* the aggregate counters -- ``attrib.btb_misses ==
sim.btb_misses_total`` and friends -- which
:mod:`repro.obs.invariants` checks whenever an attribution snapshot is
merged into a metric snapshot (the conservation guarantee that keeps
attribution from silently drifting off the numbers the figures are
built on).

Three outputs:

* **per-branch records** keyed by stable branch identity (workload, pc,
  kind): BTB lookups/misses, shadow-resident misses, U-/R-SBB hit
  split, resteer counts and cycles by cause, and the branch's static
  head/tail shadow position from
  :func:`repro.workloads.analysis.shadow_positions`;
* **per-line coverage maps**: bytes decoded by SBD head vs tail
  (exact byte masks), decode/discard counts, shadow branches found,
  and branches rescued vs missed per line;
* **top-N offender tables** ranked by resteer cycles, rendered as
  markdown or HTML (``repro attrib report``) and compared per-branch
  with regression thresholds (``repro attrib diff``).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import DroppedEventsWarning

#: Artifact schema version; bump when the JSON layout changes shape.
ATTRIBUTION_SCHEMA = 1

#: Default diff gates: a branch is flagged when its total resteer-cycle
#: attribution grows by more than ``DIFF_MIN_CYCLES`` *and* by more than
#: ``DIFF_MIN_PCT`` percent of its before-value.
DIFF_MIN_CYCLES = 100.0
DIFF_MIN_PCT = 10.0


# ----------------------------------------------------------------------
# Rollup records
# ----------------------------------------------------------------------

@dataclass
class BranchAttribution:
    """Everything attributed to one static branch (one PC)."""

    pc: int
    kind: str | None = None
    #: Static shadow position: "head", "tail", "head+tail", "none", or
    #: "?" when no census was supplied.
    shadow: str = "?"
    btb_lookups: int = 0
    btb_misses: int = 0
    btb_miss_l1i_hit: int = 0
    sbb_hits_u: int = 0
    sbb_hits_r: int = 0
    sbb_misses: int = 0
    #: BTB misses a Section 7.1 comparator design claimed instead of the
    #: SBB -- the cross-design analogue of an SBB rescue.
    comparator_hits: int = 0
    decode_resteers: int = 0
    exec_resteers: int = 0
    resteer_counts: dict[str, int] = field(default_factory=dict)
    resteer_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def sbb_hits(self) -> int:
        return self.sbb_hits_u + self.sbb_hits_r

    @property
    def rescues(self) -> int:
        """BTB misses *some* covering structure absorbed (SBB half or a
        comparator design) -- the design-agnostic rescue count that
        makes offender tables comparable across designs."""
        return self.sbb_hits_u + self.sbb_hits_r + self.comparator_hits

    @property
    def resteers(self) -> int:
        return self.decode_resteers + self.exec_resteers

    @property
    def cycles(self) -> float:
        return sum(self.resteer_cycles.values())

    @property
    def top_cause(self) -> str:
        if not self.resteer_cycles:
            return "-"
        return max(self.resteer_cycles, key=lambda c: self.resteer_cycles[c])

    def to_jsonable(self) -> dict:
        out: dict = {"pc": self.pc, "kind": self.kind, "shadow": self.shadow}
        for name in ("btb_lookups", "btb_misses", "btb_miss_l1i_hit",
                     "sbb_hits_u", "sbb_hits_r", "sbb_misses",
                     "comparator_hits", "decode_resteers", "exec_resteers"):
            value = getattr(self, name)
            if value:
                out[name] = value
        if self.resteer_counts:
            out["resteer_counts"] = {cause: self.resteer_counts[cause]
                                     for cause in sorted(self.resteer_counts)}
        if self.resteer_cycles:
            out["resteer_cycles"] = {cause: self.resteer_cycles[cause]
                                     for cause in sorted(self.resteer_cycles)}
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "BranchAttribution":
        out = cls(pc=data["pc"], kind=data.get("kind"),
                  shadow=data.get("shadow", "?"))
        for name in ("btb_lookups", "btb_misses", "btb_miss_l1i_hit",
                     "sbb_hits_u", "sbb_hits_r", "sbb_misses",
                     "comparator_hits", "decode_resteers", "exec_resteers"):
            setattr(out, name, data.get(name, 0))
        out.resteer_counts = dict(data.get("resteer_counts", {}))
        out.resteer_cycles = dict(data.get("resteer_cycles", {}))
        return out


@dataclass
class LineAttribution:
    """Shadow coverage and rescue accounting for one cache line."""

    line: int
    btb_lookups: int = 0
    btb_misses: int = 0
    sbb_hits: int = 0
    sbb_misses: int = 0
    comparator_hits: int = 0
    head_decodes: int = 0
    tail_decodes: int = 0
    head_discarded: int = 0
    #: Bitmasks of byte offsets the SBD decoded (bit ``i`` == offset
    #: ``i``): head decodes cover ``[0, entry_offset)``, tail decodes
    #: cover ``[exit_offset, line_size)``.
    head_mask: int = 0
    tail_mask: int = 0
    shadow_branches_found: int = 0

    @property
    def head_bytes(self) -> int:
        return self.head_mask.bit_count()

    @property
    def tail_bytes(self) -> int:
        return self.tail_mask.bit_count()

    @property
    def covered_bytes(self) -> int:
        return (self.head_mask | self.tail_mask).bit_count()

    @property
    def rescued(self) -> int:
        """Dynamic BTB misses on this line covered by an SBB or
        comparator hit."""
        return self.sbb_hits + self.comparator_hits

    @property
    def missed(self) -> int:
        """Dynamic BTB misses on this line nothing rescued."""
        return self.btb_misses - self.sbb_hits - self.comparator_hits

    def to_jsonable(self) -> dict:
        out: dict = {"line": self.line}
        for name in ("btb_lookups", "btb_misses", "sbb_hits", "sbb_misses",
                     "comparator_hits", "head_decodes", "tail_decodes",
                     "head_discarded", "head_mask", "tail_mask",
                     "shadow_branches_found"):
            value = getattr(self, name)
            if value:
                out[name] = value
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "LineAttribution":
        out = cls(line=data["line"])
        for name in ("btb_lookups", "btb_misses", "sbb_hits", "sbb_misses",
                     "comparator_hits", "head_decodes", "tail_decodes",
                     "head_discarded", "head_mask", "tail_mask",
                     "shadow_branches_found"):
            setattr(out, name, data.get(name, 0))
        return out


# ----------------------------------------------------------------------
# The aggregator
# ----------------------------------------------------------------------

class AttributionAggregator:
    """Event sink building per-branch and per-line rollups.

    ``warmup`` gates counting exactly as the simulator gates ``SimStats``
    (events whose ``record`` index precedes it are observed but not
    counted), so rollup sums equal the aggregate counters.
    ``shadow_positions`` (pc -> :class:`ShadowPosition`) stamps each
    branch record with its static head/tail shadow candidacy.
    """

    def __init__(self, workload: str = "?", warmup: int = 0,
                 line_size: int = 64, shadow_positions: dict | None = None,
                 meta: dict | None = None):
        if line_size < 1:
            raise ValueError("line_size must be positive")
        self.workload = workload
        self.warmup = warmup
        self.line_size = line_size
        self.meta = dict(meta or {})
        self.branches: dict[int, BranchAttribution] = {}
        self.lines: dict[int, LineAttribution] = {}
        self.events_seen = 0
        self.events_counted = 0
        #: Events the *source* lost before we saw it (JSONL readers only;
        #: a live sink never drops).
        self.source_dropped = 0
        self._positions = shadow_positions or {}

    @classmethod
    def for_simulation(cls, program, config, warmup: int = 0,
                       meta: dict | None = None) -> "AttributionAggregator":
        """Build an aggregator wired to one program + configuration.

        Computes the static shadow census up front so every branch
        record carries its head/tail candidacy.
        """
        from repro.workloads.analysis import shadow_position_map
        return cls(workload=program.name, warmup=warmup,
                   line_size=config.line_size,
                   shadow_positions=shadow_position_map(program), meta=meta)

    # -- event intake --------------------------------------------------

    def observe(self, event: dict) -> None:
        """Consume one trace event (the :class:`EventTrace` sink hook)."""
        self.events_seen += 1
        record = event.get("record")
        if record is not None and record < self.warmup:
            return
        kind = event.get("kind")
        if kind == "btb":
            self._on_btb(event)
        elif kind == "sbb":
            self._on_sbb(event)
        elif kind == "comparator":
            self._on_comparator(event)
        elif kind == "sbd":
            self._on_sbd(event)
        elif kind == "resteer":
            self._on_resteer(event)
        else:
            return
        self.events_counted += 1

    def _branch(self, pc: int) -> BranchAttribution:
        branch = self.branches.get(pc)
        if branch is None:
            branch = BranchAttribution(pc=pc, shadow=self._shadow_of(pc))
            self.branches[pc] = branch
        return branch

    def _shadow_of(self, pc: int) -> str:
        if not self._positions:
            return "?"
        position = self._positions.get(pc)
        return "none" if position is None else position.label

    def _line(self, pc: int) -> LineAttribution:
        address = pc & ~(self.line_size - 1)
        line = self.lines.get(address)
        if line is None:
            line = LineAttribution(line=address)
            self.lines[address] = line
        return line

    def _on_btb(self, event: dict) -> None:
        branch = self._branch(event["pc"])
        if branch.kind is None:
            branch.kind = event.get("branch_kind")
        line = self._line(event["pc"])
        branch.btb_lookups += 1
        line.btb_lookups += 1
        if not event["hit"]:
            branch.btb_misses += 1
            line.btb_misses += 1
            if event.get("resident"):
                branch.btb_miss_l1i_hit += 1

    def _on_sbb(self, event: dict) -> None:
        branch = self._branch(event["pc"])
        line = self._line(event["pc"])
        if event["hit"]:
            if event.get("which") == "u":
                branch.sbb_hits_u += 1
            else:
                branch.sbb_hits_r += 1
            line.sbb_hits += 1
        else:
            branch.sbb_misses += 1
            line.sbb_misses += 1

    def _on_comparator(self, event: dict) -> None:
        # Emitted on every BTB miss when a comparator design is active;
        # only hits roll up (a comparator miss is not an extra event
        # population -- the SBB/undetected path accounts for the branch).
        if event["hit"]:
            self._branch(event["pc"]).comparator_hits += 1
            self._line(event["pc"]).comparator_hits += 1

    def _on_sbd(self, event: dict) -> None:
        pc = event["pc"]
        line = self._line(pc)
        offset = pc % self.line_size
        if event.get("side") == "head":
            line.head_decodes += 1
            if event.get("discarded"):
                line.head_discarded += 1
            # Head decodes sweep the bytes before the entry point.
            line.head_mask |= (1 << offset) - 1
        else:
            line.tail_decodes += 1
            # Tail decodes sweep from the exit point to the line end.
            full = (1 << self.line_size) - 1
            line.tail_mask |= full ^ ((1 << offset) - 1)
        line.shadow_branches_found += event.get("branches", 0)

    def _on_resteer(self, event: dict) -> None:
        branch = self._branch(event["pc"])
        cause = event.get("cause", "unattributed")
        if event.get("stage") == "decode":
            branch.decode_resteers += 1
        else:
            branch.exec_resteers += 1
        branch.resteer_counts[cause] = branch.resteer_counts.get(cause, 0) + 1
        branch.resteer_cycles[cause] = (branch.resteer_cycles.get(cause, 0.0)
                                        + event.get("latency", 0.0))

    # -- rollup sums ---------------------------------------------------

    def totals(self) -> dict[str, float]:
        """Sums over every branch/line record.

        Each sum equals (by construction, and by declared invariant) the
        corresponding aggregate ``SimStats`` counter of the same run.
        """
        out: dict[str, float] = {
            "branches": len(self.branches),
            "lines": len(self.lines),
            "btb_lookups": 0, "btb_misses": 0, "btb_miss_l1i_hit": 0,
            "sbb_hits_u": 0, "sbb_hits_r": 0, "sbb_misses": 0,
            "comparator_hits": 0,
            "decode_resteers": 0, "exec_resteers": 0,
            "resteer_cycles_total": 0.0,
            "sbd_head_decodes": 0, "sbd_tail_decodes": 0,
            "sbd_head_discarded": 0, "shadow_branches_found": 0,
        }
        causes: dict[str, int] = {}
        for branch in self.branches.values():
            out["btb_lookups"] += branch.btb_lookups
            out["btb_misses"] += branch.btb_misses
            out["btb_miss_l1i_hit"] += branch.btb_miss_l1i_hit
            out["sbb_hits_u"] += branch.sbb_hits_u
            out["sbb_hits_r"] += branch.sbb_hits_r
            out["sbb_misses"] += branch.sbb_misses
            out["comparator_hits"] += branch.comparator_hits
            out["decode_resteers"] += branch.decode_resteers
            out["exec_resteers"] += branch.exec_resteers
            out["resteer_cycles_total"] += branch.cycles
            for cause, count in branch.resteer_counts.items():
                causes[cause] = causes.get(cause, 0) + count
        for line in self.lines.values():
            out["sbd_head_decodes"] += line.head_decodes
            out["sbd_tail_decodes"] += line.tail_decodes
            out["sbd_head_discarded"] += line.head_discarded
            out["shadow_branches_found"] += line.shadow_branches_found
        out["sbb_hits"] = out["sbb_hits_u"] + out["sbb_hits_r"]
        out["sbb_lookups"] = out["sbb_hits"] + out["sbb_misses"]
        out["resteers_total"] = (out["decode_resteers"]
                                 + out["exec_resteers"])
        for cause in sorted(causes):
            out[f"resteer_causes.{cause}"] = causes[cause]
        return out

    @property
    def shadow_resident_fraction(self) -> float:
        """Shadow-resident BTB-miss fraction from per-branch records.

        The per-PC reconstruction of Figure 1/15: the integer sums match
        ``SimStats.btb_miss_l1i_hit / total_btb_misses`` exactly.
        """
        totals = self.totals()
        misses = totals["btb_misses"]
        return totals["btb_miss_l1i_hit"] / misses if misses else 0.0

    def snapshot(self) -> dict[str, float]:
        """The rollup sums as ``attrib.*`` snapshot keys.

        Merge this into a simulator's metric snapshot to activate the
        ``attribution_*_conservation`` invariants.
        """
        return {f"attrib.{name}": value
                for name, value in self.totals().items()}

    def top_branches(self, n: int = 20,
                     key: str = "cycles") -> list[BranchAttribution]:
        """The ``n`` worst offenders, ranked by ``key`` (descending)."""
        return sorted(self.branches.values(),
                      key=lambda b: (-getattr(b, key), b.pc))[:n]

    def top_lines(self, n: int = 20,
                  key: str = "missed") -> list[LineAttribution]:
        return sorted(self.lines.values(),
                      key=lambda l: (-getattr(l, key), l.line))[:n]

    # -- persistence ---------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "workload": self.workload,
            "warmup": self.warmup,
            "line_size": self.line_size,
            "meta": dict(self.meta),
            "events": {"seen": self.events_seen,
                       "counted": self.events_counted,
                       "source_dropped": self.source_dropped},
            "totals": self.totals(),
            "branches": [self.branches[pc].to_jsonable()
                         for pc in sorted(self.branches)],
            "lines": [self.lines[address].to_jsonable()
                      for address in sorted(self.lines)],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "AttributionAggregator":
        schema = data.get("schema")
        if schema != ATTRIBUTION_SCHEMA:
            raise ValueError(
                f"attribution schema {schema!r} != {ATTRIBUTION_SCHEMA}")
        out = cls(workload=data.get("workload", "?"),
                  warmup=data.get("warmup", 0),
                  line_size=data.get("line_size", 64),
                  meta=data.get("meta"))
        events = data.get("events", {})
        out.events_seen = events.get("seen", 0)
        out.events_counted = events.get("counted", 0)
        out.source_dropped = events.get("source_dropped", 0)
        for payload in data.get("branches", ()):
            out.branches[payload["pc"]] = (
                BranchAttribution.from_jsonable(payload))
        for payload in data.get("lines", ()):
            out.lines[payload["line"]] = (
                LineAttribution.from_jsonable(payload))
        return out

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_jsonable(), sort_keys=True)
                        + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "AttributionAggregator":
        return cls.from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8")))

    @classmethod
    def from_trace_jsonl(cls, path: str | Path, warmup: int = 0,
                         workload: str = "?", line_size: int = 64,
                         shadow_positions: dict | None = None,
                         ) -> "AttributionAggregator":
        """Rebuild attribution offline from an EventTrace JSONL dump.

        A ring-buffered dump may have dropped its oldest events; the
        header makes that explicit, and so does this reader -- a
        truncated stream *under-attributes*, so ``dropped > 0`` raises a
        :class:`DroppedEventsWarning` instead of passing silently.
        """
        out = cls(workload=workload, warmup=warmup, line_size=line_size,
                  shadow_positions=shadow_positions)
        path = Path(path)
        with open(path, encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                event = json.loads(raw)
                if event.get("kind") == "trace_header":
                    dropped = event.get("dropped", 0)
                    if dropped:
                        out.source_dropped = dropped
                        warnings.warn(
                            f"{path}: trace header reports {dropped} "
                            f"dropped events; attribution rollups will "
                            f"under-count (re-dump with a larger "
                            f"--trace-capacity)", DroppedEventsWarning,
                            stacklevel=2)
                    continue
                out.observe(event)
        return out


# ----------------------------------------------------------------------
# Reports (markdown / HTML)
# ----------------------------------------------------------------------

def _branch_rows(aggregator: AttributionAggregator, top: int) -> list[list]:
    rows = []
    for branch in aggregator.top_branches(top):
        rows.append([
            f"0x{branch.pc:x}", branch.kind or "?", branch.shadow,
            branch.btb_misses, branch.btb_miss_l1i_hit,
            branch.sbb_hits_u, branch.sbb_hits_r, branch.resteers,
            round(branch.cycles, 1), branch.top_cause,
        ])
    return rows


def _line_rows(aggregator: AttributionAggregator, top: int) -> list[list]:
    rows = []
    for line in aggregator.top_lines(top):
        rows.append([
            f"0x{line.line:x}", line.head_decodes, line.tail_decodes,
            line.head_bytes, line.tail_bytes, line.shadow_branches_found,
            line.rescued, line.missed,
        ])
    return rows


_BRANCH_HEADERS = ["pc", "kind", "shadow", "btb_miss", "resident_miss",
                   "u_hits", "r_hits", "resteers", "cycles", "top_cause"]
_LINE_HEADERS = ["line", "head_dec", "tail_dec", "head_bytes", "tail_bytes",
                 "found", "rescued", "missed"]


def _summary_pairs(aggregator: AttributionAggregator) -> list[tuple[str, str]]:
    totals = aggregator.totals()
    misses = int(totals["btb_misses"])
    resident = int(totals["btb_miss_l1i_hit"])
    hits = int(totals["sbb_hits"])
    fraction = resident / misses if misses else 0.0
    rescue = hits / misses if misses else 0.0
    pairs = [
        ("workload", aggregator.workload),
        ("static branches attributed", str(int(totals["branches"]))),
        ("cache lines touched", str(int(totals["lines"]))),
        ("BTB misses", str(misses)),
        ("shadow-resident misses (L1I hit)",
         f"{resident} ({fraction:.1%})"),
        ("SBB rescues (U + R)",
         f"{hits} = {int(totals['sbb_hits_u'])} + "
         f"{int(totals['sbb_hits_r'])} ({rescue:.1%} of misses)"),
    ]
    comparator_hits = int(totals.get("comparator_hits", 0))
    if comparator_hits:
        comparator_rescue = comparator_hits / misses if misses else 0.0
        pairs.append(("comparator rescues",
                      f"{comparator_hits} "
                      f"({comparator_rescue:.1%} of misses)"))
    pairs += [
        ("resteers (decode + exec)",
         f"{int(totals['resteers_total'])} = "
         f"{int(totals['decode_resteers'])} + "
         f"{int(totals['exec_resteers'])}"),
        ("resteer cycles", f"{totals['resteer_cycles_total']:.0f}"),
        ("SBD decodes (head / tail)",
         f"{int(totals['sbd_head_decodes'])} / "
         f"{int(totals['sbd_tail_decodes'])}"),
    ]
    return pairs


def _cause_rows(aggregator: AttributionAggregator) -> list[list]:
    counts: dict[str, int] = {}
    cycles: dict[str, float] = {}
    for branch in aggregator.branches.values():
        for cause, count in branch.resteer_counts.items():
            counts[cause] = counts.get(cause, 0) + count
        for cause, total in branch.resteer_cycles.items():
            cycles[cause] = cycles.get(cause, 0.0) + total
    return [[cause, counts[cause], round(cycles.get(cause, 0.0), 1)]
            for cause in sorted(counts, key=lambda c: -cycles.get(c, 0.0))]


def render_markdown(aggregator: AttributionAggregator,
                    top: int = 20) -> str:
    """The attribution report as GitHub-flavoured markdown."""
    from repro.harness.reporting import format_markdown_table

    parts = [f"# Attribution report: {aggregator.workload}", ""]
    parts.append("| metric | value |")
    parts.append("| --- | --- |")
    for name, value in _summary_pairs(aggregator):
        parts.append(f"| {name} | {value} |")
    parts.append("")
    parts.append(f"## Top {top} branches by resteer cycles")
    parts.append("")
    parts.append(format_markdown_table(_BRANCH_HEADERS,
                                       _branch_rows(aggregator, top)))
    parts.append("")
    parts.append("## Resteer causes")
    parts.append("")
    parts.append(format_markdown_table(["cause", "resteers", "cycles"],
                                       _cause_rows(aggregator)))
    parts.append("")
    parts.append(f"## Top {top} cache lines by unrescued misses")
    parts.append("")
    parts.append(format_markdown_table(_LINE_HEADERS,
                                       _line_rows(aggregator, top)))
    parts.append("")
    return "\n".join(parts)


def _html_table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{header}</th>" for header in headers)
    body = "\n".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows)
    return (f"<table>\n<thead><tr>{head}</tr></thead>\n"
            f"<tbody>\n{body}\n</tbody>\n</table>")


def render_html(aggregator: AttributionAggregator, top: int = 20) -> str:
    """Self-contained single-file HTML report."""
    summary = _html_table(["metric", "value"],
                          [list(pair) for pair in _summary_pairs(aggregator)])
    branches = _html_table(_BRANCH_HEADERS, _branch_rows(aggregator, top))
    causes = _html_table(["cause", "resteers", "cycles"],
                         _cause_rows(aggregator))
    lines = _html_table(_LINE_HEADERS, _line_rows(aggregator, top))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Attribution report: {aggregator.workload}</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 2rem; }}
table {{ border-collapse: collapse; margin-bottom: 1.5rem; }}
th, td {{ border: 1px solid #bbb; padding: 0.25rem 0.6rem;
         text-align: right; font-variant-numeric: tabular-nums; }}
th {{ background: #eee; }}
td:first-child, th:first-child {{ text-align: left;
                                  font-family: monospace; }}
h1, h2 {{ font-weight: 600; }}
</style>
</head>
<body>
<h1>Attribution report: {aggregator.workload}</h1>
{summary}
<h2>Top {top} branches by resteer cycles</h2>
{branches}
<h2>Resteer causes</h2>
{causes}
<h2>Top {top} cache lines by unrescued misses</h2>
{lines}
</body>
</html>
"""


def render_report(aggregator: AttributionAggregator, fmt: str = "markdown",
                  top: int = 20) -> str:
    if fmt in ("markdown", "md"):
        return render_markdown(aggregator, top=top)
    if fmt == "html":
        return render_html(aggregator, top=top)
    raise ValueError(f"unknown report format {fmt!r}")


# ----------------------------------------------------------------------
# Per-branch diff (the A/B story)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BranchDelta:
    """One branch's attribution movement between two runs."""

    pc: int
    kind: str | None
    shadow: str
    before_cycles: float
    after_cycles: float
    before_misses: int
    after_misses: int
    before_rescues: int
    after_rescues: int
    flagged: bool

    @property
    def delta_cycles(self) -> float:
        return self.after_cycles - self.before_cycles


@dataclass
class AttributionDiff:
    """All per-branch deltas, most-moved first."""

    deltas: list[BranchDelta]
    min_cycles: float
    min_pct: float

    @property
    def regressions(self) -> list[BranchDelta]:
        return [delta for delta in self.deltas if delta.flagged]

    def render(self, top: int = 20) -> str:
        from repro.harness.reporting import format_table
        rows = []
        for delta in self.deltas[:top]:
            rows.append([
                f"0x{delta.pc:x}", delta.kind or "?", delta.shadow,
                round(delta.before_cycles, 1), round(delta.after_cycles, 1),
                round(delta.delta_cycles, 1),
                delta.after_misses - delta.before_misses,
                delta.after_rescues - delta.before_rescues,
                "REGRESSED" if delta.flagged else "",
            ])
        table = format_table(
            ["pc", "kind", "shadow", "cycles_before", "cycles_after",
             "delta", "d_miss", "d_rescue", ""], rows,
            title=(f"per-branch attribution deltas (flag: > "
                   f"{self.min_cycles:g} cycles and > {self.min_pct:g}%)"))
        summary = (f"{len(self.deltas)} branches moved, "
                   f"{len(self.regressions)} regressed past thresholds")
        return f"{table}\n{summary}"


def diff_attributions(before: AttributionAggregator,
                      after: AttributionAggregator,
                      min_cycles: float = DIFF_MIN_CYCLES,
                      min_pct: float = DIFF_MIN_PCT) -> AttributionDiff:
    """Per-branch comparison of two attribution artifacts.

    A branch is *flagged* when its resteer-cycle attribution grew by
    more than ``min_cycles`` absolute cycles *and* more than ``min_pct``
    percent of its before-value (a branch absent before regresses on the
    absolute gate alone).  ``repro attrib diff`` exits non-zero when any
    branch is flagged.
    """
    deltas = []
    for pc in sorted(set(before.branches) | set(after.branches)):
        b = before.branches.get(pc)
        a = after.branches.get(pc)
        before_cycles = b.cycles if b else 0.0
        after_cycles = a.cycles if a else 0.0
        if b is None and a is None:  # pragma: no cover - unreachable
            continue
        reference = a or b
        delta = after_cycles - before_cycles
        flagged = (delta > min_cycles
                   and delta > (min_pct / 100.0) * before_cycles)
        if before_cycles == after_cycles and b and a:
            # Unmoved branch: keep the diff focused on movement.
            # ``rescues`` folds SBB and comparator hits together, so a
            # cross-design diff (e.g. Skia vs Micro-BTB) still surfaces
            # a branch whose coverage merely changed hands.
            if (b.btb_misses == a.btb_misses
                    and b.rescues == a.rescues):
                continue
        deltas.append(BranchDelta(
            pc=pc, kind=reference.kind, shadow=reference.shadow,
            before_cycles=before_cycles, after_cycles=after_cycles,
            before_misses=b.btb_misses if b else 0,
            after_misses=a.btb_misses if a else 0,
            before_rescues=b.rescues if b else 0,
            after_rescues=a.rescues if a else 0,
            flagged=flagged))
    deltas.sort(key=lambda delta: (-abs(delta.delta_cycles), delta.pc))
    return AttributionDiff(deltas=deltas, min_cycles=min_cycles,
                           min_pct=min_pct)
