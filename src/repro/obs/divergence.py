"""Cross-engine / cross-config divergence bisection.

The stack has three execution paths sworn to bit-identity (object loop,
compiled loop, batched lane kernel).  When they disagree -- or when two
configs are *expected* to disagree and you want to know where -- a
whole-run stats mismatch carries zero localization.  The bisector here
turns that into an exact coordinate:

1. **Window pass** -- run both sides over the same trace with an
   :class:`~repro.obs.intervals.IntervalCollector` cutting windows at
   identical record indices, each boundary also sampling a rolling
   BTB / SBB / RAS / L1-I occupancy digest (:func:`state_digest`).
   Compare per-window digests (counter delta row + state hash) in
   lockstep and stop at the first mismatch.
2. **Oracle pass** -- re-run just the divergent window's prefix with
   per-record windows (``interval_size=1``), each side on its *own*
   engine, to pin the first divergent record, plus an object-oracle
   replay with a full event trace to recover the events of that record
   and a microarchitectural state diff at the point of divergence.

Identical sides produce ``DivergenceReport.identical == True``.  The
window pass costs two plain runs; the oracle pass re-simulates only the
prefix up to the divergent window's end.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.digests import state_digest  # noqa: F401  (re-export)
from repro.obs.intervals import IntervalCollector
from repro.obs.registry import diff_snapshots
from repro.obs.trace import EventTrace

ENGINES = ("object", "compiled", "batched")


@dataclass
class WindowDigest:
    """One window's comparison unit: counter deltas + state hash."""

    index: int
    end: int
    row_hash: str
    state_hash: str

    @staticmethod
    def row_fingerprint(row: dict) -> str:
        text = json.dumps(row, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class DivergenceReport:
    """Where two sides first disagree, and how."""

    a_label: str
    b_label: str
    windows_compared: int
    identical: bool
    window: int | None = None
    window_start: int | None = None
    window_end: int | None = None
    #: Per-window counter differences ``{name: (a, b)}`` at the first
    #: mismatching window (empty when only the state hash differed).
    window_counters: dict = field(default_factory=dict)
    #: First record index whose per-record delta row differs.
    record_index: int | None = None
    #: Counter differences of that single record, ``{name: (a, b)}``.
    record_counters: dict = field(default_factory=dict)
    #: ``diff_snapshots`` of the two sides' metric snapshots after
    #: replaying the divergent prefix (microarchitectural state diff).
    state_diff: dict = field(default_factory=dict)
    #: Object-oracle events of the divergent record, per side.
    events_a: list = field(default_factory=list)
    events_b: list = field(default_factory=list)

    def render(self) -> str:
        lines = [f"divergence bisect: {self.a_label} vs {self.b_label}"]
        if self.identical:
            lines.append(f"identical over {self.windows_compared} windows")
            return "\n".join(lines) + "\n"
        lines.append(
            f"first divergent window: {self.window} "
            f"(records [{self.window_start}, {self.window_end}))")
        if self.record_index is not None:
            lines.append(f"first divergent record: {self.record_index}")
        for title, diff in (("window counters", self.window_counters),
                            ("record counters", self.record_counters)):
            if diff:
                lines.append(f"{title}:")
                for name in sorted(diff):
                    a_val, b_val = diff[name]
                    lines.append(f"  {name}: {a_val} vs {b_val}")
        if self.state_diff:
            lines.append("state diff (metric snapshot, a vs b):")
            for name in sorted(self.state_diff):
                a_val, b_val = self.state_diff[name]
                lines.append(f"  {name}: {a_val} vs {b_val}")
        for label, events in ((self.a_label, self.events_a),
                              (self.b_label, self.events_b)):
            if events:
                lines.append(f"oracle events of record {self.record_index} "
                             f"({label}):")
                for event in events:
                    lines.append(f"  {event}")
        return "\n".join(lines) + "\n"

    def to_jsonable(self) -> dict:
        return dataclasses.asdict(self)


def _run_side(program, records, compiled, config, engine: str, warmup: int,
              seed: int, window: int, with_probe: bool = True,
              with_trace: bool = False):
    """One full run of ``engine`` with a window collector attached."""
    from repro.frontend.batch import run_compiled_batched
    from repro.frontend.engine import FrontEndSimulator

    # The simulator owns the collector we attach below; zero the config
    # knob so init does not attach a probe-less one first.
    config = dataclasses.replace(config, interval_size=0)
    simulator = FrontEndSimulator(program, config, seed=seed)
    collector = IntervalCollector(
        window,
        state_probe=(lambda: state_digest(simulator)) if with_probe
        else None)
    simulator.attach_intervals(collector)
    if with_trace:
        # Sinks keep every emission; the ring only bounds memory.
        simulator.attach_trace(EventTrace(capacity=4096))
    if engine == "object":
        simulator.run(records, warmup=warmup)
    elif engine == "compiled":
        simulator.run_compiled(compiled, warmup=warmup)
    elif engine == "batched":
        run_compiled_batched(simulator, compiled, warmup=warmup)
    else:
        raise ValueError(f"unknown engine {engine!r}; one of {ENGINES}")
    return simulator, collector


def _oracle_events(program, records, config, warmup: int, seed: int,
                   record_index: int) -> list[dict]:
    """Object-oracle replay of ``records[:record_index + 1]`` keeping
    every event of the divergent record."""
    from repro.frontend.engine import FrontEndSimulator

    config = dataclasses.replace(config, interval_size=0)
    simulator = FrontEndSimulator(program, config, seed=seed)
    trace = EventTrace(capacity=1)
    kept: list[dict] = []
    trace.add_sink(lambda event: kept.append(dict(event))
                   if event.get("record") == record_index else None)
    simulator.attach_trace(trace)
    simulator.run(records[:record_index + 1], warmup=warmup)
    return kept


def bisect_divergence(program, records: Sequence, config_a, config_b=None,
                      *, engine_a: str = "object", engine_b: str = "batched",
                      warmup: int = 0, window: int = 1000, seed: int = 0,
                      compiled=None, oracle_events: bool = True,
                      ) -> DivergenceReport:
    """Localize the first divergence between two (engine, config) sides.

    ``config_b`` defaults to ``config_a`` (pure engine-vs-engine
    comparison).  Returns a :class:`DivergenceReport`; when the sides
    agree window-for-window (rows *and* state hashes) the report's
    ``identical`` flag is set and every coordinate field is ``None``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if config_b is None:
        config_b = config_a
    records = list(records)
    if compiled is None and ("compiled" in (engine_a, engine_b)
                             or "batched" in (engine_a, engine_b)):
        from repro.workloads.compiled import CompiledTrace
        compiled = CompiledTrace.from_records(records)

    a_label = f"{engine_a}/{_config_label(config_a)}"
    b_label = f"{engine_b}/{_config_label(config_b)}"

    # State hashes only compare meaningfully when both sides run the
    # same configuration (engine-vs-engine mode): different configs
    # have structurally different state from record zero, which would
    # pin every cross-config bisection to window 0.  Counter rows are
    # the divergence signal there instead.
    compare_state = config_a == config_b

    # Window pass: both sides fully, compared boundary by boundary.
    _, coll_a = _run_side(program, records, compiled, config_a, engine_a,
                          warmup, seed, window, with_probe=compare_state)
    _, coll_b = _run_side(program, records, compiled, config_b, engine_b,
                          warmup, seed, window, with_probe=compare_state)

    n_windows = min(coll_a.windows, coll_b.windows)
    divergent = None
    for index in range(n_windows):
        if (coll_a.rows[index] != coll_b.rows[index]
                or coll_a.ends[index] != coll_b.ends[index]
                or (compare_state and coll_a.state_marks[index]
                    != coll_b.state_marks[index])):
            divergent = index
            break
    if divergent is None and coll_a.windows != coll_b.windows:
        divergent = n_windows  # one side has extra windows

    if divergent is None:
        return DivergenceReport(a_label=a_label, b_label=b_label,
                                windows_compared=n_windows, identical=True)

    ends = coll_a.ends if divergent < coll_a.windows else coll_b.ends
    window_end = ends[divergent]
    window_start = 0 if divergent == 0 else ends[divergent - 1]
    window_counters = _row_diff(
        coll_a.rows[divergent] if divergent < coll_a.windows else {},
        coll_b.rows[divergent] if divergent < coll_b.windows else {})

    # Oracle pass: per-record windows over the divergent prefix, each
    # side on its own engine, to pin the first divergent record.  In
    # engine-vs-engine mode the per-record state hashes localize even a
    # state-only divergence (counters agreeing, structures drifting).
    prefix = records[:window_end]
    if "compiled" in (engine_a, engine_b) or "batched" in (engine_a,
                                                           engine_b):
        from repro.workloads.compiled import CompiledTrace
        fine_compiled = CompiledTrace.from_records(prefix)
    else:
        fine_compiled = None
    sim_a, fine_a = _run_side(program, prefix, fine_compiled, config_a,
                              engine_a, warmup, seed, 1,
                              with_probe=compare_state)
    sim_b, fine_b = _run_side(program, prefix, fine_compiled, config_b,
                              engine_b, warmup, seed, 1,
                              with_probe=compare_state)
    record_index = None
    record_counters: dict = {}
    for index in range(min(fine_a.windows, fine_b.windows)):
        if (fine_a.rows[index] != fine_b.rows[index]
                or (compare_state and fine_a.state_marks[index]
                    != fine_b.state_marks[index])):
            record_index = index
            record_counters = _row_diff(fine_a.rows[index],
                                        fine_b.rows[index])
            break

    state_diff = diff_snapshots(sim_a.metrics_snapshot(),
                                sim_b.metrics_snapshot())

    events_a: list = []
    events_b: list = []
    if oracle_events and record_index is not None:
        events_a = _oracle_events(program, records, config_a, warmup, seed,
                                  record_index)
        events_b = _oracle_events(program, records, config_b, warmup, seed,
                                  record_index)

    return DivergenceReport(
        a_label=a_label, b_label=b_label, windows_compared=divergent + 1,
        identical=False, window=divergent, window_start=window_start,
        window_end=window_end, window_counters=window_counters,
        record_index=record_index, record_counters=record_counters,
        state_diff=state_diff, events_a=events_a, events_b=events_b)


def _row_diff(row_a: dict, row_b: dict) -> dict:
    """Differing keys of two delta rows, ``{name: (a, b)}``."""
    out = {}
    for name in sorted(set(row_a) | set(row_b)):
        a_val = row_a.get(name, 0)
        b_val = row_b.get(name, 0)
        if a_val != b_val:
            out[name] = (a_val, b_val)
    return out


def _config_label(config) -> str:
    """Compact human label for a config side."""
    if config.comparator is not None:
        return config.comparator
    skia = config.skia
    if skia.enabled:
        heads = getattr(skia, "decode_heads", False)
        tails = getattr(skia, "decode_tails", False)
        return {(True, True): "skia", (True, False): "head",
                (False, True): "tail"}.get((heads, tails), "skia")
    return "base"


def window_digests(collector: IntervalCollector) -> list[WindowDigest]:
    """The comparison units of a window pass, hashed for display."""
    digests = []
    for index in range(collector.windows):
        state = (collector.state_marks[index]
                 if index < len(collector.state_marks) else "")
        digests.append(WindowDigest(
            index=index, end=collector.ends[index],
            row_hash=WindowDigest.row_fingerprint(collector.rows[index]),
            state_hash=str(state)))
    return digests
