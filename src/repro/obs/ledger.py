"""The run ledger: harness-level run identity and cell lifecycle.

The obs stack below this module sees deeply inside *one* simulation;
the ledger makes the harness itself observable.  Every ledgered harness
invocation (``repro experiment``, ``stats``, ``attrib``, ``bench``)
gets a **run id** and a directory under ``.repro_cache/runs/<run_id>/``
holding:

* ``manifest.jsonl`` -- the append-only, schema-versioned run manifest:
  a header record (command, config/code/schema fingerprints, host), one
  ``grid`` record per submitted batch, a lifecycle record per cell
  (``queued -> store_probe -> prepare -> simulate -> invariants ->
  store_write -> done``, or ``error``), ``group``/``heartbeat``/
  ``straggler`` records, and a ``finish`` footer.  Records are written
  one ``os.write`` each on an ``O_APPEND`` descriptor, so parallel
  workers share the file safely and a crashed run is diagnosable from
  its partial manifest (every line already written is complete).
* ``spans.jsonl`` -- harness spans (:mod:`repro.obs.spans`).
* ``profile-<pid>.json`` -- per-process profiler snapshot deltas, the
  reference side of the span-conservation invariants.
* ``timeline-<cell>.json`` -- optional pipeline timelines, merged with
  the spans by ``repro runs show --perfetto``.

Lifecycle phases are **semantically identical between serial and
parallel runs** (ordering and host-specific fields aside) -- the
agreement suite normalises both down to per-cell phase/outcome sets and
asserts equality, the same contract the stats layer already enforces.

Nothing is ledgered by default: the harness consults
:func:`active_ledger`, which is ``None`` unless a CLI entry point (or a
test) opened a run via :func:`start_run`.  ``REPRO_LEDGER=0`` disables
the layer even for the CLI.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs import spans as _spans
from repro.obs.profiler import PROFILER

#: Bump when the manifest record shape changes; readers refuse nothing
#: (append-only JSONL stays readable) but tools can gate on it.
LEDGER_SCHEMA_VERSION = 1

#: Cell lifecycle phases, in nominal order.  ``done``/``error`` are the
#: terminal states every cell must reach in a complete run.
CELL_PHASES = ("queued", "store_probe", "prepare", "simulate",
               "invariants", "store_write", "straggler", "done", "error")
TERMINAL_PHASES = frozenset({"done", "error"})

#: A completed cell wall time this many times the run median flags the
#: cell as a straggler (in the ledger and the logs).
STRAGGLER_FACTOR = 4.0

#: Straggler flagging needs at least this many completed walls before a
#: median is meaningful.
STRAGGLER_MIN_SAMPLES = 5


def ledger_enabled() -> bool:
    """False when ``REPRO_LEDGER`` is set to a falsy value."""
    return os.environ.get("REPRO_LEDGER", "").lower() not in (
        "0", "false", "no", "off")


def runs_root(root: str | os.PathLike | None = None) -> Path:
    """Where run directories live (honours ``REPRO_CACHE_DIR``)."""
    if root is not None:
        return Path(root)
    cache = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return Path(cache) / "runs"


def new_run_id() -> str:
    """Sortable-by-creation, collision-safe run identifier."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def cell_id_for(workload: str, config, seed: int, bolted: bool) -> str:
    """A stable, human-scannable cell identity.

    The config digest hashes the same order-stable
    :func:`~repro.harness.store.config_key` identity the memo and store
    use, so serial and parallel runs (and reruns) agree on ids.
    """
    import hashlib

    from repro.harness.store import config_key

    digest = hashlib.sha256(
        repr(config_key(config)).encode()).hexdigest()[:8]
    bolt = "+bolt" if bolted else ""
    return f"{workload}{bolt}:s{seed}:{digest}"


class RunLedger:
    """Append-only JSONL manifest writer for one run."""

    def __init__(self, run_dir: str | os.PathLike, run_id: str):
        self.run_dir = Path(run_dir)
        self.run_id = run_id
        self._fd: int | None = None
        self._last_heartbeat: dict[int, float] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, command: str, root: str | os.PathLike | None = None,
               run_id: str | None = None,
               meta: Mapping[str, object] | None = None) -> "RunLedger":
        """Create the run directory and write the manifest header."""
        from repro import __version__
        from repro.harness.store import code_fingerprint, schema_fingerprint

        run_id = run_id or new_run_id()
        ledger = cls(runs_root(root) / run_id, run_id)
        ledger.run_dir.mkdir(parents=True, exist_ok=True)
        header = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "run_id": run_id,
            "command": command,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "repro": __version__,
            "code": code_fingerprint(),
            "schema": schema_fingerprint(),
        }
        if meta:
            header["meta"] = dict(meta)
        ledger.record("run_header", **header)
        return ledger

    @classmethod
    def attach(cls, run_dir: str | os.PathLike) -> "RunLedger":
        """Open an existing run for appending (pool workers)."""
        run_dir = Path(run_dir)
        return cls(run_dir, run_dir.name)

    # -- paths -----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.jsonl"

    @property
    def spans_path(self) -> Path:
        return self.run_dir / "spans.jsonl"

    def profile_path(self, pid: int | None = None) -> Path:
        return self.run_dir / f"profile-{pid or os.getpid()}.json"

    def timeline_path(self, cell_id: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "+-_." else "_"
                       for ch in cell_id)
        return self.run_dir / f"timeline-{safe}.json"

    # -- writing ---------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Append one manifest record (a single atomic ``os.write``)."""
        if self._fd is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.manifest_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        payload = {"kind": kind, "ts": round(time.time(), 6),
                   "pid": os.getpid()}
        payload.update(fields)
        os.write(self._fd, (json.dumps(payload, sort_keys=True) + "\n")
                 .encode("utf-8"))

    def cell(self, cell_id: str, phase: str, **fields) -> None:
        """One lifecycle record for ``cell_id``."""
        self.record("cell", cell=cell_id, phase=phase, **fields)

    def group(self, cells: Iterable[str], mode: str) -> None:
        """One ``harness.cell`` section opened, covering ``cells``."""
        cells = list(cells)
        self.record("group", cells=cells, n=len(cells), mode=mode)

    def grid(self, cells: int, **fields) -> None:
        """Shape of one submitted batch."""
        self.record("grid", cells=cells, **fields)

    def heartbeat(self, min_interval: float = 5.0, **fields) -> None:
        """A rate-limited per-worker liveness record."""
        now = time.monotonic()
        pid = os.getpid()
        last = self._last_heartbeat.get(pid)
        if last is not None and now - last < min_interval:
            return
        self._last_heartbeat[pid] = now
        self.record("heartbeat", **fields)

    def write_profile(self, snapshot: Mapping[str, Mapping[str, int]],
                      pid: int | None = None) -> None:
        """Persist this process's profiler snapshot delta (atomic)."""
        path = self.profile_path(pid)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(dict(snapshot), sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)

    def finish(self, status: str = "complete", **fields) -> None:
        self.record("finish", status=status, **fields)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


# ----------------------------------------------------------------------
# The active ledger (what the harness consults)
# ----------------------------------------------------------------------

_ACTIVE: RunLedger | None = None
_ACTIVE_PID: int | None = None
_PROFILE_BASELINE: dict[str, dict[str, int]] = {}


def active_ledger() -> RunLedger | None:
    """The process's active ledger, or ``None``.

    Pid-guarded: a forked pool worker inherits the parent's module
    state, but its spans and profile deltas must be attributed to its
    *own* pid -- so the inherited active ledger reads as ``None`` and
    the worker attaches its own telemetry to the shared run directory.
    """
    if _ACTIVE is None or _ACTIVE_PID != os.getpid():
        return None
    return _ACTIVE


def set_active(ledger: RunLedger | None) -> None:
    global _ACTIVE, _ACTIVE_PID
    _ACTIVE = ledger
    _ACTIVE_PID = None if ledger is None else os.getpid()


def profile_delta() -> dict[str, dict[str, int]]:
    """This process's profiler snapshot, baselined at run start."""
    delta: dict[str, dict[str, int]] = {}
    for name, stats in PROFILER.snapshot().items():
        base = _PROFILE_BASELINE.get(name)
        if base is None:
            delta[name] = stats
            continue
        calls = stats["calls"] - base["calls"]
        total = stats["total_ns"] - base["total_ns"]
        if calls or total:
            delta[name] = {"calls": calls, "total_ns": total,
                           "exclusive_ns": (stats["exclusive_ns"]
                                            - base["exclusive_ns"])}
    return delta


def set_profile_baseline(snapshot: Mapping[str, Mapping[str, int]]) -> None:
    _PROFILE_BASELINE.clear()
    _PROFILE_BASELINE.update({name: dict(stats)
                              for name, stats in snapshot.items()})


def checkpoint_telemetry(ledger: RunLedger) -> None:
    """Flush spans + persist this process's profiler delta.

    Called after each cell on worker paths and at run finish on the
    serial path, in this order (spans first), so ``spans.jsonl`` and
    ``profile-<pid>.json`` always describe the same popped-section
    population -- the precondition of the span conservation check.
    """
    recorder = _spans.active_recorder()
    if recorder is not None:
        recorder.flush()
    ledger.write_profile(profile_delta())


@contextmanager
def start_run(command: str, root: str | os.PathLike | None = None,
              meta: Mapping[str, object] | None = None,
              enable: bool = True):
    """Open a ledgered run for the duration of the ``with`` block.

    Creates the run directory, installs the span recorder as the
    profiler sink, enables the profiler (spans need sections), and
    exposes the ledger via :func:`active_ledger` for the harness to
    emit cell lifecycle records.  Yields ``None`` -- and changes
    nothing -- when disabled (``enable=False`` / ``REPRO_LEDGER=0``)
    or when a run is already active (nested harness entry points reuse
    the outer run).
    """
    if not enable or not ledger_enabled() or active_ledger() is not None:
        yield None
        return
    ledger = RunLedger.create(command, root=root, meta=meta)
    recorder = _spans.SpanRecorder(ledger.spans_path)
    previous_enabled = PROFILER.enabled
    previous_sink = PROFILER.sink
    set_profile_baseline(PROFILER.snapshot())
    PROFILER.enabled = True
    PROFILER.sink = recorder.on_section
    _spans.set_active_recorder(recorder)
    set_active(ledger)
    started = time.monotonic()
    status = "complete"
    try:
        yield ledger
    except BaseException:
        status = "error"
        raise
    finally:
        try:
            flag_stragglers(ledger)
            ledger.finish(status=status,
                          wall_s=round(time.monotonic() - started, 6))
            checkpoint_telemetry(ledger)
        finally:
            set_active(None)
            _spans.set_active_recorder(None)
            PROFILER.sink = previous_sink
            PROFILER.enabled = previous_enabled
            recorder.close()
            ledger.close()


# ----------------------------------------------------------------------
# Reading + summarising
# ----------------------------------------------------------------------

def read_manifest(path: str | os.PathLike) -> list[dict]:
    """Load a manifest; tolerates a torn final line (crashed run)."""
    path = Path(path)
    if not path.is_file():
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


@dataclass
class CellState:
    """One cell's lifecycle, folded from its manifest records."""

    cell_id: str
    phases: list[str] = field(default_factory=list)
    fields: dict = field(default_factory=dict)
    straggler: bool = False

    @property
    def terminal(self) -> str | None:
        for phase in self.phases:
            if phase in TERMINAL_PHASES:
                return phase
        return None

    @property
    def wall_s(self) -> float | None:
        return self.fields.get("wall_s")


@dataclass
class RunSummary:
    """A folded view of one run's manifest."""

    run_id: str
    run_dir: Path
    command: str = ""
    created: str = ""
    schema_version: int | None = None
    cells: dict[str, CellState] = field(default_factory=dict)
    grid_cells: int = 0
    groups: int = 0
    group_cells: int = 0
    heartbeat_pids: set = field(default_factory=set)
    finish: dict | None = None

    @property
    def incomplete(self) -> list[str]:
        """Cells that never reached a terminal state."""
        return sorted(cell_id for cell_id, state in self.cells.items()
                      if state.terminal is None)

    @property
    def stragglers(self) -> list[str]:
        return sorted(cell_id for cell_id, state in self.cells.items()
                      if state.straggler)

    @property
    def status(self) -> str:
        if self.finish is None:
            return "running/crashed"
        if self.incomplete:
            return f"{self.finish.get('status', '?')} (incomplete)"
        return str(self.finish.get("status", "?"))

    def results(self) -> dict[str, int]:
        """Terminal outcome histogram (``simulated``/``store_hit``/...)."""
        out: dict[str, int] = {}
        for state in self.cells.values():
            terminal = state.terminal
            if terminal is None:
                continue
            label = (state.fields.get("result", "error")
                     if terminal == "done" else "error")
            out[label] = out.get(label, 0) + 1
        return out


def summarize(records: Iterable[Mapping],
              run_dir: str | os.PathLike = ".") -> RunSummary:
    """Fold manifest records into a :class:`RunSummary`."""
    summary = RunSummary(run_id=Path(run_dir).name, run_dir=Path(run_dir))
    for record in records:
        kind = record.get("kind")
        if kind == "run_header":
            summary.command = str(record.get("command", ""))
            summary.created = str(record.get("created", ""))
            summary.schema_version = record.get("schema_version")
            summary.run_id = str(record.get("run_id", summary.run_id))
        elif kind == "grid":
            summary.grid_cells += int(record.get("cells", 0))
        elif kind == "group":
            summary.groups += 1
            summary.group_cells += int(record.get("n", 0))
        elif kind == "heartbeat":
            summary.heartbeat_pids.add(record.get("pid"))
        elif kind == "finish":
            summary.finish = dict(record)
        elif kind == "cell":
            cell_id = str(record.get("cell"))
            state = summary.cells.get(cell_id)
            if state is None:
                state = summary.cells[cell_id] = CellState(cell_id)
            phase = str(record.get("phase"))
            state.phases.append(phase)
            if phase == "straggler":
                state.straggler = True
            for key, value in record.items():
                if key not in ("kind", "ts", "pid", "cell", "phase"):
                    state.fields[key] = value
    return summary


def load_run(run_id: str,
             root: str | os.PathLike | None = None) -> RunSummary:
    run_dir = runs_root(root) / run_id
    return summarize(read_manifest(run_dir / "manifest.jsonl"), run_dir)


def list_runs(root: str | os.PathLike | None = None) -> list[RunSummary]:
    """Summaries of every run under the runs root, newest first."""
    base = runs_root(root)
    if not base.is_dir():
        return []
    summaries = []
    for run_dir in sorted(base.iterdir(), reverse=True):
        if not run_dir.is_dir():
            continue
        summaries.append(
            summarize(read_manifest(run_dir / "manifest.jsonl"), run_dir))
    return summaries


def latest_run_id(root: str | os.PathLike | None = None) -> str | None:
    base = runs_root(root)
    if not base.is_dir():
        return None
    run_dirs = sorted((d for d in base.iterdir() if d.is_dir()),
                      reverse=True)
    return run_dirs[0].name if run_dirs else None


# ----------------------------------------------------------------------
# Straggler flagging (post-hoc: parallel cell walls live in the ledger)
# ----------------------------------------------------------------------

def flag_stragglers(ledger: RunLedger,
                    factor: float = STRAGGLER_FACTOR,
                    min_samples: int = STRAGGLER_MIN_SAMPLES) -> list[str]:
    """Flag completed cells whose wall exceeds ``factor`` x median.

    Reads the run's own manifest (workers already appended their
    ``done`` records with per-cell walls), computes the median over
    individually-timed cells (shared batched-group walls are excluded:
    one wall covers N lanes) and appends a ``straggler`` record per
    offender not already flagged live by the progress reporter.
    """
    import logging

    records = read_manifest(ledger.manifest_path)
    walls: dict[str, float] = {}
    flagged: set[str] = set()
    for record in records:
        if record.get("kind") != "cell":
            continue
        cell_id = str(record.get("cell"))
        phase = record.get("phase")
        if phase == "straggler":
            flagged.add(cell_id)
        elif (phase == "done" and record.get("wall_s") is not None
                and not record.get("shared_wall")):
            walls[cell_id] = float(record["wall_s"])
    if len(walls) < min_samples:
        return []
    median = statistics.median(walls.values())
    if median <= 0:
        return []
    newly = []
    log = logging.getLogger("repro.ledger")
    for cell_id, wall in sorted(walls.items()):
        if wall > factor * median and cell_id not in flagged:
            ledger.cell(cell_id, "straggler", wall_s=round(wall, 6),
                        median_s=round(median, 6), factor=factor)
            log.warning("straggler cell %s: %.3fs vs median %.3fs "
                        "(> %.1fx)", cell_id, wall, median, factor)
            newly.append(cell_id)
    return newly
