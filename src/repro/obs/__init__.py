"""Observability: metrics registry, event tracing, invariant checks.

The simulator's counters are the evidence behind every reproduced claim
(the ~75% shadow-resident BTB-miss fraction, the ~5.7% geomean, the 2x
marginal value over equal-area BTB state), so they get a first-class
subsystem:

* :mod:`repro.obs.registry` -- a lightweight metrics registry.  Each
  hardware component (BTB, U-SBB/R-SBB, RAS, SBD, comparators, the FDIP
  engine) registers a named *scope* of counters, gauges and histograms;
  ``snapshot()`` flattens everything into one ``{name: value}`` dict
  that can be persisted, diffed and merged.
* :mod:`repro.obs.trace` -- an opt-in ring-buffered structured event
  trace (BTB/SBB hits and misses, shadow-decode head/tail outcomes,
  resteers with cause and latency), dumpable as JSONL.
* :mod:`repro.obs.invariants` -- declared cross-checks over a metric
  snapshot (``btb_miss == sbb_hit + sbb_miss``, resteer causes sum to
  total resteers, SBB insertions cover evictions + occupancy, ...).
  ``repro stats`` runs them from the CLI; the tier-1 suite runs them
  over the Figure 14 grid.
* :mod:`repro.obs.attribution` -- per-static-branch and per-cache-line
  rollups of the event stream (who causes the BTB misses, who gets
  rescued, where the resteer cycles go), conserved exactly against the
  aggregate ``SimStats`` counters and exposed as ``repro attrib``.
* :mod:`repro.obs.timeline` -- an opt-in per-cycle pipeline timeline
  (IAG/fetch/decode/retire/SBD tracks) exported as Chrome trace-event
  JSON for Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.intervals` -- per-window counter deltas (every
  ``interval_size`` retired records, cut identically by all three
  engines) frozen into a fingerprinted columnar ``IntervalSeries``;
  column sums equal the aggregate counters exactly
  (``interval_conservation``).
* :mod:`repro.obs.divergence` -- lockstep-by-window comparison of two
  engines or configs over the same trace, localizing the first
  divergent window, then the first divergent record under the object
  oracle with a full event trace and a state diff.
* :mod:`repro.obs.profiler` -- a host-side section profiler
  (``perf_counter_ns``, nesting, exclusive time) threaded through the
  harness so ``repro bench`` can report where wall-clock goes.
* :mod:`repro.obs.ledger` -- the run ledger: every ledgered harness
  invocation gets a run id and an append-only JSONL manifest under
  ``.repro_cache/runs/<run_id>/`` with a lifecycle record per cell,
  diagnosable even for crashed runs; ``repro runs list/show``.
* :mod:`repro.obs.spans` -- profiler sections as run-scoped spans with
  cell identity, conserved exactly against profiler totals and merged
  with pipeline timelines into one Perfetto-loadable trace.

Nothing here is on the simulation hot path unless enabled: gauges are
sampled lazily at snapshot time from counters the components already
maintain, and tracing costs nothing when no trace is attached.
"""

from __future__ import annotations

from repro.obs.attribution import (
    AttributionAggregator,
    AttributionDiff,
    BranchAttribution,
    LineAttribution,
    diff_attributions,
    render_report,
)
from repro.obs.digests import (
    StructureDigest,
    probe_digest,
    state_digest,
)
from repro.obs.divergence import (
    DivergenceReport,
    WindowDigest,
    bisect_divergence,
)
from repro.obs.intervals import (
    IntervalCollector,
    IntervalSeries,
    diff_series,
    sparkline,
)
from repro.obs.invariants import (
    INVARIANTS,
    Violation,
    applicable_invariants,
    check_snapshot,
    snapshot_from_stats,
)
from repro.obs.ledger import (
    RunLedger,
    active_ledger,
    flag_stragglers,
    list_runs,
    load_run,
    read_manifest,
    start_run,
    summarize,
)
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    Scope,
    diff_snapshots,
    load_snapshot,
    merge_snapshots,
    render_snapshot,
    save_snapshot,
    snapshot_to_prometheus,
)
from repro.obs.profiler import PROFILER, SectionProfiler, profile
from repro.obs.spans import (
    SpanRecorder,
    check_cell_conservation,
    check_span_conservation,
    merge_run_trace,
    read_spans,
    span_rollup,
)
from repro.obs.timeline import (
    TimelineRecorder,
    chrome_from_jsonl,
    chrome_from_trace_events,
)
from repro.obs.trace import DroppedEventsWarning, EventTrace

__all__ = [
    "AttributionAggregator",
    "AttributionDiff",
    "BranchAttribution",
    "DivergenceReport",
    "DroppedEventsWarning",
    "EventTrace",
    "IntervalCollector",
    "IntervalSeries",
    "LineAttribution",
    "WindowDigest",
    "bisect_divergence",
    "diff_attributions",
    "diff_series",
    "render_report",
    "Histogram",
    "INVARIANTS",
    "MetricsRegistry",
    "PROFILER",
    "RunLedger",
    "Scope",
    "SectionProfiler",
    "SpanRecorder",
    "StructureDigest",
    "TimelineRecorder",
    "Violation",
    "active_ledger",
    "applicable_invariants",
    "check_cell_conservation",
    "check_snapshot",
    "check_span_conservation",
    "chrome_from_jsonl",
    "chrome_from_trace_events",
    "diff_snapshots",
    "flag_stragglers",
    "list_runs",
    "load_run",
    "load_snapshot",
    "merge_run_trace",
    "merge_snapshots",
    "probe_digest",
    "profile",
    "read_manifest",
    "read_spans",
    "render_snapshot",
    "save_snapshot",
    "snapshot_from_stats",
    "snapshot_to_prometheus",
    "span_rollup",
    "sparkline",
    "start_run",
    "state_digest",
    "summarize",
]
