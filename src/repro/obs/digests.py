"""Shared structure digests: occupancy hashes and fast-forward probes.

Two consumers, two fidelity levels:

* :func:`state_digest` -- the divergence bisector's per-window rolling
  *occupancy* hash (moved verbatim from ``obs/divergence.py``; the hex
  strings it produces are unchanged).  It hashes which entries are
  resident, not their payloads -- enough to catch two runs whose
  counters agree but whose residency drifted.
* :func:`probe_digest` -- the fast-forward layer's *behavioural* state
  hash.  Two probes at the same trace phase with equal probe digests
  imply the simulator evolves identically (modulo a uniform clock
  shift) over the next period, so payloads matter: BTB entry kinds and
  targets, TAGE counters and its allocator RNG state, cache ready
  times relative to the probe's clock base, SBB payload/retired bits,
  the FTQ contents and scheduler clocks.

:class:`StructureDigest` memoises per-structure part hashes keyed by a
cheap *version* (an existing activity counter), so repeated probes cost
O(structures touched since the last probe), not O(total capacity):
structures a workload never exercises (an idle loop predictor, a
drained RAS, Skia structures in a baseline config) are hashed once.
"""

from __future__ import annotations

import hashlib
from typing import Callable

__all__ = ["StructureDigest", "probe_digest", "state_digest"]


def state_digest(simulator) -> str:
    """Rolling occupancy hash of the simulator's stateful structures.

    Covers BTB residency (per-set, in LRU order), L1-I residency, both
    SBB halves and the RAS contents -- enough that two runs whose
    counters happen to agree but whose microarchitectural state drifted
    still produce differing window digests.  Deterministic across
    processes: only ints and Nones are hashed.
    """
    btb = simulator.bpu.btb
    parts: list[object] = []
    if btb.infinite:
        parts.append(("btb", tuple(sorted(btb._full))))
    else:
        parts.append(("btb", tuple(tuple(s) for s in btb._sets)))
    l1i = simulator.hierarchy.l1i
    parts.append(("l1i", tuple(tuple(s) for s in l1i._sets)))
    ras = simulator.bpu.ras
    parts.append(("ras", tuple(ras._buffer), ras._top))
    if simulator.skia is not None:
        sbb = simulator.skia.sbb
        parts.append(("usbb", tuple(tuple(s) for s in sbb.usbb._sets)))
        parts.append(("rsbb", tuple(tuple(s) for s in sbb.rsbb._sets)))
    return hashlib.sha256(repr(parts).encode("ascii")).hexdigest()[:16]


class StructureDigest:
    """Version-memoised per-structure hash accumulator.

    ``part(key, version, build)`` returns the SHA-256 of
    ``repr(build())``, recomputing only when ``version`` differs from
    the memoised one.  Versions are existing activity counters (e.g.
    ``btb.lookups``): any mutation of the structure is accompanied by a
    counter bump, so an unchanged version proves unchanged contents.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict[str, tuple[object, bytes]] = {}

    def part(self, key: str, version: object,
             build: Callable[[], object]) -> bytes:
        memo = self._memo.get(key)
        if memo is not None and memo[0] == version:
            return memo[1]
        digest = hashlib.sha256(repr(build()).encode("ascii")).digest()
        self._memo[key] = (version, digest)
        return digest


def _rel(value: float, base: float):
    """A timestamp relative to ``base``; the past collapses to one class.

    Ready times / FTQ completions at or before the probe's clock base
    are behaviourally interchangeable (every consumer takes
    ``max(value, now)`` with ``now >= base``, or drains them before
    reading), so they all hash as ``None``.
    """
    return value - base if value > base else None


def _cache_part(level, base: float):
    return tuple(
        tuple((line, _rel(ready, base)) for line, ready in way.items())
        for way in level._sets)


def probe_digest(simulator, state, base: float,
                 acc: StructureDigest) -> bytes:
    """Behavioural state hash at a fast-forward probe.

    ``state`` carries the engine-scheduler locals (the four clocks, the
    FTQ deque, ``prev_taken``); ``base`` is the probe's clock origin
    (``state.iag_free``), subtracted from every absolute timestamp so
    two phases of the same steady-state orbit hash identically.
    """
    h = hashlib.sha256()
    ftq = tuple(_rel(done, base) for done in state.ftq_inflight)
    engine_part = (state.fetch_free - base, state.decode_free - base,
                   state.retire_free - base, ftq, state.prev_taken)
    h.update(repr(engine_part).encode("ascii"))

    bpu = simulator.bpu
    btb = bpu.btb
    if btb.infinite:
        build_btb = lambda: tuple(sorted(  # noqa: E731
            (tag, e.kind.value, e.target) for tag, e in btb._full.items()))
    else:
        build_btb = lambda: tuple(  # noqa: E731
            tuple((tag, e.kind.value, e.target) for tag, e in way.items())
            for way in btb._sets)
    h.update(acc.part("btb", btb.lookups, build_btb))

    hierarchy = simulator.hierarchy
    for name, level in (("l1i", hierarchy.l1i), ("l2", hierarchy.l2),
                        ("l3", hierarchy.l3)):
        # Ready times are base-relative, so the version must carry the
        # base too -- a probe at a new base always rehashes the caches.
        h.update(acc.part(name, (level.accesses, base),
                          lambda lvl=level: _cache_part(lvl, base)))

    tage = bpu.tage
    h.update(acc.part("tage", tage.predictions, lambda: (
        tuple(tuple(sorted((idx, e.tag, e.ctr, e.useful)
                           for idx, e in table.items()))
              for table in tage.tables),
        tuple(sorted(tage.bimodal.items())),
        tage.history,
        tage._rng.getstate(),
    )))
    # The loop predictor only mutates inside the conditional-predict
    # path, which always bumps tage.predictions first -- so TAGE's
    # counter doubles as the loop table's version.
    loop = bpu.loop
    if loop is not None:
        h.update(acc.part("loop", tage.predictions, lambda: tuple(
            (pc, e.trip, e.current, e.confidence)
            for pc, e in loop._table.items())))

    ittage = bpu.ittage
    h.update(acc.part("ittage", ittage.predictions, lambda: (
        tuple(tuple(sorted((idx, e.tag, e.target, e.confidence)
                           for idx, e in table.items()))
              for table in ittage.tables),
        tuple(sorted(ittage.base.items())),
        ittage.history,
    )))

    ras = bpu.ras
    h.update(acc.part("ras", (ras.pushes, ras.pops), lambda: (
        tuple(ras._buffer), ras._top, ras._occupancy)))

    skia = simulator.skia
    if skia is not None:
        for name, half in (("usbb", skia.sbb.usbb), ("rsbb", skia.sbb.rsbb)):
            h.update(acc.part(
                name, (half.lookups, half.insertions, half.retired_marks),
                lambda s=half: tuple(
                    tuple((tag, e.payload, e.retired)
                          for tag, e in way.items())
                    for way in s._sets)))
        sbd = skia.sbd
        for name, cache in (("sbd_head", sbd._head_memo),
                            ("sbd_tail", sbd._tail_memo),
                            ("sbd_line", sbd._line_cache)):
            # Memo values are pure functions of their keys; LRU key
            # order is the behavioural state (eviction order).
            h.update(acc.part(name, (cache.hits, cache.misses),
                              lambda c=cache: tuple(c._data)))

    return h.digest()
