"""Harness span tracing: profiler sections as run-scoped spans.

The section profiler (:mod:`repro.obs.profiler`) answers "where did the
wall-clock go?" as per-process totals; this module keeps the individual
section *instances* -- one span per push/pop pair, stamped with the
active run/cell identity and the recording pid -- and serialises them
next to the run ledger (:mod:`repro.obs.ledger`) as append-only JSONL.
Spans from every process of a run (the serial harness, each pool
worker) land in one ``spans.jsonl``, so a grid run's harness-level
timeline can be merged with the per-cycle pipeline timelines
(:mod:`repro.obs.timeline`) into a single Perfetto-loadable trace:
harness spans and simulated-cycle tracks open in one viewer.

Exactness contract: the recorder is installed as the profiler's *sink*,
so every span carries the same integer nanoseconds the profiler
accumulates into its section totals.  Span rollups therefore equal
profiler section totals **by construction**, and
:func:`check_span_conservation` / :func:`check_cell_conservation` turn
that identity (plus "every covered cell is accounted to exactly one
``harness.cell`` span") into checkable invariants, mirroring the
counter-conservation style of :mod:`repro.obs.invariants`.

Nothing here is active unless a run is started
(:func:`repro.obs.ledger.start_run`): the profiler's sink is ``None``
by default and costs one attribute check per section pop, which itself
only happens while the profiler is enabled.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.invariants import Violation

#: Bump when the span record shape changes.
SPANS_SCHEMA_VERSION = 1

#: Chrome trace-event process id of the harness span track (the pipeline
#: timeline uses pid 1, the converted event trace pid 2).
HARNESS_PID = 3
HARNESS_PROCESS = "repro-harness"


class SpanRecorder:
    """Buffers profiler sections as spans; flushes append-only JSONL.

    Install with ``profiler.sink = recorder.on_section``.  ``set_cell``
    stamps subsequently *popped* sections with a cell id (the harness
    sets it around each cell's lifecycle, so ``store.get`` or
    ``harness.simulate`` sections attribute to the cell they served).

    ``flush`` appends the buffered spans to ``path`` in one ``os.write``
    on an ``O_APPEND`` descriptor, so concurrent writers (pool workers
    sharing one ``spans.jsonl``) never interleave mid-line.  A crashed
    process loses at most the spans buffered since its last flush --
    the file itself is always well-formed JSONL.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fd: int | None = None
        self._buffer: list[dict] = []
        self._cell: str | None = None
        #: Spans recorded (including already-flushed ones).
        self.recorded = 0

    # -- recording -------------------------------------------------------

    def on_section(self, name: str, start_ns: int, elapsed_ns: int) -> None:
        """Profiler sink: one popped section becomes one span."""
        self._buffer.append({
            "name": name, "start_ns": start_ns, "dur_ns": elapsed_ns,
            "cell": self._cell, "pid": os.getpid(),
        })
        self.recorded += 1

    def set_cell(self, cell_id: str | None) -> None:
        """Stamp subsequently popped sections with ``cell_id``."""
        self._cell = cell_id

    # -- persistence -----------------------------------------------------

    def flush(self) -> int:
        """Append buffered spans to :attr:`path`; returns spans written."""
        if not self._buffer:
            return 0
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        payload = "".join(json.dumps(span, sort_keys=True) + "\n"
                          for span in self._buffer)
        os.write(self._fd, payload.encode("utf-8"))
        written = len(self._buffer)
        self._buffer.clear()
        return written

    def close(self) -> None:
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


# ----------------------------------------------------------------------
# The process-wide active recorder (installed by ledger.start_run and by
# pool workers attaching to a run).
# ----------------------------------------------------------------------

_ACTIVE: SpanRecorder | None = None


def active_recorder() -> SpanRecorder | None:
    return _ACTIVE


def set_active_recorder(recorder: SpanRecorder | None) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def set_cell(cell_id: str | None) -> None:
    """Stamp the active recorder's context; no-op when none is active."""
    if _ACTIVE is not None:
        _ACTIVE.set_cell(cell_id)


# ----------------------------------------------------------------------
# Reading + rollups
# ----------------------------------------------------------------------

def read_spans(path: str | os.PathLike) -> list[dict]:
    """Load a ``spans.jsonl``; tolerates a truncated final line."""
    path = Path(path)
    if not path.is_file():
        return []
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError:
                continue  # torn tail write of a crashed process
            if isinstance(span, dict):
                spans.append(span)
    return spans


def span_rollup(spans: Iterable[Mapping]
                ) -> dict[tuple[int, str], tuple[int, int]]:
    """``{(pid, section): (count, total_ns)}`` over a span stream."""
    counts: dict[tuple[int, str], list[int]] = defaultdict(lambda: [0, 0])
    for span in spans:
        entry = counts[(int(span.get("pid", 0)), str(span["name"]))]
        entry[0] += 1
        entry[1] += int(span["dur_ns"])
    return {key: (count, total) for key, (count, total) in counts.items()}


def check_span_conservation(
        spans: Iterable[Mapping],
        profiles: Mapping[int, Mapping[str, Mapping[str, int]]],
) -> list[Violation]:
    """Span rollups must equal profiler section totals, per process.

    ``profiles`` maps pid -> profiler snapshot delta (the
    ``{section: {calls, total_ns, ...}}`` shape of
    :meth:`repro.obs.profiler.SectionProfiler.snapshot`, baselined at
    run start).  For every pid that recorded a profile, each section's
    span count must equal its call count and the span nanoseconds must
    sum exactly to the section's ``total_ns`` -- any drift means spans
    were dropped, duplicated or mis-stamped.
    """
    violations: list[Violation] = []
    rollup = span_rollup(spans)
    for pid, sections in profiles.items():
        pid = int(pid)
        for name, stats in sections.items():
            count, total = rollup.get((pid, name), (0, 0))
            calls = int(stats.get("calls", 0))
            total_ns = int(stats.get("total_ns", 0))
            if count != calls:
                violations.append(Violation(
                    "span_profiler_conservation",
                    f"pid {pid} section {name}: {count} spans but "
                    f"{calls} profiler calls"))
            elif total != total_ns:
                violations.append(Violation(
                    "span_profiler_conservation",
                    f"pid {pid} section {name}: span total {total}ns "
                    f"but profiler total {total_ns}ns"))
        # Spans for sections absent from the profile mean the profile
        # snapshot missed pops (flush-ordering bug).
        for (span_pid, name), (count, _) in rollup.items():
            if span_pid == pid and name not in sections:
                violations.append(Violation(
                    "span_profiler_conservation",
                    f"pid {pid}: {count} spans for section {name} "
                    f"missing from the profiler snapshot"))
    return violations


def check_cell_conservation(ledger_records: Iterable[Mapping],
                            spans: Iterable[Mapping]) -> list[Violation]:
    """Cell counts must match the ``harness.cell`` span population.

    Every ``harness.cell`` section the harness opens logs one ``group``
    ledger record naming the cells it covers (one cell on the serial and
    worker paths, N lanes on the batched group path).  Conservation:

    * ``harness.cell`` span count == ``group`` record count, and
    * the cells covered by groups == the terminal cells whose ``done``
      record carries ``spanned=True`` (store hits short-circuiting
      *before* any section, e.g. in the batched group planner, are
      terminal but unspanned).
    """
    violations: list[Violation] = []
    groups = []
    spanned_done: set[str] = set()
    for record in ledger_records:
        kind = record.get("kind")
        if kind == "group":
            groups.append(record)
        elif (kind == "cell" and record.get("phase") == "done"
                and record.get("spanned")):
            spanned_done.add(str(record.get("cell")))
    n_cell_spans = sum(1 for span in spans
                       if span.get("name") == "harness.cell")
    if n_cell_spans != len(groups):
        violations.append(Violation(
            "span_cell_conservation",
            f"{n_cell_spans} harness.cell spans but {len(groups)} "
            f"group records"))
    covered: set[str] = set()
    for group in groups:
        covered.update(str(cell) for cell in group.get("cells", ()))
    if covered != spanned_done:
        missing = sorted(spanned_done - covered)
        extra = sorted(covered - spanned_done)
        violations.append(Violation(
            "span_cell_conservation",
            f"group coverage mismatch: {len(covered)} covered vs "
            f"{len(spanned_done)} spanned-terminal cells"
            + (f"; unaccounted {missing[:5]}" if missing else "")
            + (f"; spurious {extra[:5]}" if extra else "")))
    return violations


# ----------------------------------------------------------------------
# Chrome trace-event export + pipeline-timeline merge
# ----------------------------------------------------------------------

def spans_to_chrome(spans: Iterable[Mapping]) -> list[dict]:
    """Convert spans to Chrome ``X`` events (one tid per recording pid).

    Timestamps are ``perf_counter_ns`` values, per-process clocks -- so
    each pid is normalised to its own earliest span.  What the viewer
    shows per track is therefore exact durations and within-process
    ordering, which is what harness spans mean.
    """
    spans = list(spans)
    starts: dict[int, int] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        start = int(span["start_ns"])
        if pid not in starts or start < starts[pid]:
            starts[pid] = start
    tids = {pid: index + 1 for index, pid in enumerate(sorted(starts))}
    out = [{"ph": "M", "pid": HARNESS_PID, "name": "process_name",
            "args": {"name": HARNESS_PROCESS}}]
    for pid, tid in tids.items():
        out.append({"ph": "M", "pid": HARNESS_PID, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"pid {pid}"}})
        out.append({"ph": "M", "pid": HARNESS_PID, "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid}})
    timed = []
    for span in spans:
        pid = int(span.get("pid", 0))
        event = {
            "ph": "X", "pid": HARNESS_PID, "tid": tids[pid],
            "name": str(span["name"]),
            "ts": round((int(span["start_ns"]) - starts[pid]) / 1000.0, 3),
            "dur": round(int(span["dur_ns"]) / 1000.0, 3),
        }
        if span.get("cell"):
            event["args"] = {"cell": span["cell"]}
        timed.append(event)
    timed.sort(key=lambda event: (event["tid"], event["ts"]))
    return out + timed


def merge_run_trace(run_dir: str | os.PathLike,
                    out_path: str | os.PathLike) -> Path:
    """One Perfetto-loadable trace: harness spans + pipeline timelines.

    Merges the run's ``spans.jsonl`` with every ``timeline-*.json``
    pipeline timeline saved into the run directory (``repro stats run
    --timeline-out`` copies its Chrome export there when a ledger is
    active).  The processes keep distinct pids and time units (harness
    spans are host microseconds, pipeline tracks are simulated cycles);
    Perfetto renders them as separate process groups in one view.
    """
    run_dir = Path(run_dir)
    events = spans_to_chrome(read_spans(run_dir / "spans.jsonl"))
    sources = ["spans.jsonl"]
    for timeline_path in sorted(run_dir.glob("timeline-*.json")):
        try:
            payload = json.loads(timeline_path.read_text(encoding="utf-8"))
        except ValueError:
            continue
        events.extend(payload.get("traceEvents", []))
        sources.append(timeline_path.name)
    out_path = Path(out_path)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro.obs.spans",
            "run_dir": str(run_dir),
            "sources": sources,
            "time_unit": ("harness pid 3: 1 trace us == 1 host us; "
                          "pipeline pid 1: 1 trace us == 1 simulated "
                          "cycle"),
        },
    }
    out_path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return out_path
