"""Declared cross-checks over metric snapshots.

Each invariant is a named, documented predicate over the flat snapshot
dict (see :mod:`repro.obs.registry`).  Counter identities that must hold
for *any* correct simulation are checked whenever their inputs are
present; identities that only hold for particular configurations (Skia
enabled, no comparator) are gated on ``config.*`` flags the snapshot
carries.

Two kinds of keys appear in a snapshot:

* ``sim.*`` -- the post-warm-up ``SimStats`` counters (always available,
  including from stored results), via :func:`snapshot_from_stats`;
* component scopes (``btb.*``, ``ras.*``, ``sbb.u.*``, ``sbb.r.*``,
  ``sbd.*``, ``engine.*``) -- whole-run structure counters, available
  when the snapshot was taken from a live simulator.  Because structure
  counters include the warm-up region and ``sim.*`` does not, cross-layer
  checks are inequalities (``sim`` never exceeds the structure).

The paper mapping: the SBB probe partition and hit/miss partition settle
whether the Section 3/4 coverage claims are counted rather than assumed;
the resteer-cause partition is the Figure 7 accounting; the RAS and SBB
structure accounting pin the Section 4.2/4.3 replacement semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from numbers import Number
from typing import Callable, Mapping

Snapshot = Mapping[str, float]


@dataclass(frozen=True)
class Violation:
    """One failed invariant."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    name: str
    description: str
    check: Callable[[Snapshot], str | None]
    #: Keys that must be present for the invariant to apply.
    requires: tuple[str, ...] = ()
    #: Keys that must be present *and truthy* (configuration gates).
    flags: tuple[str, ...] = ()

    def applies(self, snapshot: Snapshot) -> bool:
        if any(key not in snapshot for key in self.requires):
            return False
        return all(snapshot.get(key) for key in self.flags)


# ----------------------------------------------------------------------
# Snapshot construction from SimStats
# ----------------------------------------------------------------------

def snapshot_from_stats(stats, skia_enabled: bool | None = None,
                        comparator: str | None = None) -> dict[str, float]:
    """Flatten a ``SimStats`` into ``sim.*`` snapshot entries.

    Works generically over the dataclass fields so new counters join the
    snapshot (and become checkable) without touching this module.  Dict
    fields flatten to ``sim.<field>.<key>`` plus a ``sim.<field>_total``
    sum.  ``skia_enabled``/``comparator`` add ``config.*`` gates for the
    configuration-dependent invariants.
    """
    out: dict[str, float] = {}
    for field in fields(stats):
        value = getattr(stats, field.name)
        if isinstance(value, dict):
            total = 0
            for key, count in value.items():
                name = getattr(key, "value", key)
                out[f"sim.{field.name}.{name}"] = count
                total += count
            out[f"sim.{field.name}_total"] = total
        elif isinstance(value, Number):
            out[f"sim.{field.name}"] = value
    # Totals the invariants reference under their conventional names.
    out["sim.sbb_hits_total"] = stats.sbb_hits_u + stats.sbb_hits_r
    out["sim.sbb_insertions_total"] = (stats.sbb_insertions_u
                                       + stats.sbb_insertions_r)
    out["sim.resteers_total"] = stats.decode_resteers + stats.exec_resteers
    if skia_enabled is not None:
        out["config.skia_enabled"] = float(bool(skia_enabled))
    if comparator is not None:
        out["config.comparator_enabled"] = 1.0
    return out


# ----------------------------------------------------------------------
# The invariants
# ----------------------------------------------------------------------

def _eq(snapshot: Snapshot, left: str, right: float,
        describe: str) -> str | None:
    value = snapshot[left]
    if value != right:
        return f"{left}={value} but {describe}={right}"
    return None


def _le(snapshot: Snapshot, small: str, big: str) -> str | None:
    if snapshot[small] > snapshot[big]:
        return (f"{small}={snapshot[small]} exceeds "
                f"{big}={snapshot[big]}")
    return None


def _check_btb_lookups(s: Snapshot) -> str | None:
    return _eq(s, "sim.btb_lookups", s["sim.branches_total"],
               "sim.branches_total")


def _check_miss_l1i_bounded(s: Snapshot) -> str | None:
    return _le(s, "sim.btb_miss_l1i_hit", "sim.btb_misses_total")


def _check_cache_monotone(s: Snapshot) -> str | None:
    for small, big in (("sim.l3_misses", "sim.l2_misses"),
                       ("sim.l2_misses", "sim.l1i_misses"),
                       ("sim.l1i_misses", "sim.l1i_accesses")):
        message = _le(s, small, big)
        if message:
            return message
    return None


def _check_mispredicts_bounded(s: Snapshot) -> str | None:
    for name in ("cond", "indirect", "ras"):
        message = _le(s, f"sim.{name}_mispredicts",
                      f"sim.{name}_predictions")
        if message:
            return message
    return None


def _check_ras_underflows(s: Snapshot) -> str | None:
    # A pop on an empty RAS can never produce the right target, so every
    # counted underflow is also a counted mispredict.
    return _le(s, "sim.ras_underflows", "sim.ras_mispredicts")


def _check_resteer_causes(s: Snapshot) -> str | None:
    attributed = sum(value for key, value in s.items()
                     if key.startswith("sim.resteer_causes."))
    total = s["sim.resteers_total"]
    if attributed != total:
        return (f"resteer causes sum to {attributed}, but "
                f"decode+exec resteers = {total}")
    return None


def _check_resteers_bounded(s: Snapshot) -> str | None:
    return _le(s, "sim.resteers_total", "sim.branches_total")


def _check_sbb_probe_partition(s: Snapshot) -> str | None:
    # The BPU probes the SBB exactly on BTB misses the comparator did
    # not claim: btb_miss == sbb_lookups + comparator_hits, hence the
    # headline form btb_miss == sbb_hit + sbb_miss (+ comparator hits).
    expected = s["sim.btb_misses_total"] - s.get("sim.comparator_hits", 0)
    return _eq(s, "sim.sbb_lookups", expected,
               "btb_misses_total - comparator_hits")


def _check_sbb_hit_miss_partition(s: Snapshot) -> str | None:
    observed = (s["sim.sbb_hits_u"] + s["sim.sbb_hits_r"]
                + s["sim.sbb_misses"])
    return _eq(s, "sim.sbb_lookups", observed,
               "sbb_hits_u + sbb_hits_r + sbb_misses")


def _check_comparator_hits_bounded(s: Snapshot) -> str | None:
    # The comparator is probed only on BTB misses, so its counted hits
    # can never exceed them.
    return _le(s, "sim.comparator_hits", "sim.btb_misses_total")


def _check_comparator_structure_bounds(s: Snapshot) -> str | None:
    # Structure hits are a subset of structure probes, and the
    # post-warm-up counted hits are a subset of whole-run structure hits
    # (same cross-layer reasoning as cross_layer_bounds).
    message = _le(s, "comparator.hits", "comparator.lookups")
    if message:
        return message
    return _le(s, "sim.comparator_hits", "comparator.hits")


def _check_attribution_comparator(s: Snapshot) -> str | None:
    return _eq(s, "attrib.comparator_hits", s["sim.comparator_hits"],
               "sim.comparator_hits")


def _check_trace_drop_accounting(s: Snapshot) -> str | None:
    # The ring drops exactly what it emitted but no longer retains;
    # drops can never go negative and never exceed emissions.
    dropped = s["trace.dropped_events"]
    expected = s["trace.emitted"] - s["trace.retained"]
    if dropped != expected:
        return (f"trace.dropped_events={dropped} but emitted - retained "
                f"= {expected}")
    if dropped < 0:
        return f"trace.dropped_events={dropped} is negative"
    return _le(s, "trace.dropped_events", "trace.emitted")


def _check_sbb_outcomes_bounded(s: Snapshot) -> str | None:
    for small in ("sim.sbb_wrong_target", "sim.sbb_retired_marks"):
        message = _le(s, small, "sim.sbb_hits_total")
        if message:
            return message
    return None


def _check_sbb_bogus_bounded(s: Snapshot) -> str | None:
    return _le(s, "sim.sbb_bogus_insertions", "sim.sbb_insertions_total")


def _check_sbd_discard_bounded(s: Snapshot) -> str | None:
    return _le(s, "sim.sbd_head_discarded", "sim.sbd_head_decodes")


def _check_sbb_structure_accounting(s: Snapshot) -> str | None:
    # Every eviction and every live entry traces back to an insertion
    # (re-insertion payload refreshes make this an inequality).
    for half in ("sbb.u", "sbb.r"):
        insertions = s[f"{half}.insertions"]
        accounted = (s[f"{half}.evictions_bogus_first"]
                     + s[f"{half}.evictions_lru"]
                     + s[f"{half}.occupancy"])
        if insertions < accounted:
            return (f"{half}: insertions={insertions} < evictions + "
                    f"occupancy = {accounted}")
        message = _le(s, f"{half}.hits", f"{half}.lookups")
        if message:
            return message
        if s[f"{half}.occupancy"] > s[f"{half}.entries"]:
            return (f"{half}: occupancy {s[f'{half}.occupancy']} exceeds "
                    f"capacity {s[f'{half}.entries']}")
    return None


def _check_ras_structure_accounting(s: Snapshot) -> str | None:
    # Circular-stack conservation: every push either raises occupancy or
    # overwrites; every successful pop lowers it.
    expected = (s["ras.pushes"] - s["ras.overflow_overwrites"]
                - (s["ras.pops"] - s["ras.underflows"]))
    message = _eq(s, "ras.occupancy", expected,
                  "pushes - overwrites - successful pops")
    if message:
        return message
    if s["ras.occupancy"] > s["ras.depth"]:
        return (f"ras occupancy {s['ras.occupancy']} exceeds depth "
                f"{s['ras.depth']}")
    return None


def _check_btb_structure_bounds(s: Snapshot) -> str | None:
    message = _le(s, "btb.hits", "btb.lookups")
    if message:
        return message
    if not s.get("btb.infinite") and s["btb.occupancy"] > s["btb.entries"]:
        return (f"btb occupancy {s['btb.occupancy']} exceeds capacity "
                f"{s['btb.entries']}")
    return None


def _check_cross_layer_bounds(s: Snapshot) -> str | None:
    # sim.* counts the post-warm-up region only; structure counters
    # cover the whole run, so sim can never exceed them.
    pairs = [("sim.btb_lookups", "btb.lookups")]
    if "sbb.u.hits" in s:
        total_hits = s["sbb.u.hits"] + s["sbb.r.hits"]
        if s["sim.sbb_hits_total"] > total_hits:
            return (f"sim.sbb_hits_total={s['sim.sbb_hits_total']} exceeds "
                    f"structure hits {total_hits}")
    if "ras.underflows" in s:
        pairs.append(("sim.ras_underflows", "ras.underflows"))
    for small, big in pairs:
        message = _le(s, small, big)
        if message:
            return message
    return None


def _check_attribution_btb(s: Snapshot) -> str | None:
    # The attribution rollup applies the same warm-up gate as SimStats,
    # so per-branch sums equal the aggregate counters *exactly* -- any
    # drift means attribution is silently lying about the population the
    # Figure 1/15 fraction is computed over.
    for attrib, sim in (("attrib.btb_lookups", "sim.btb_lookups"),
                        ("attrib.btb_misses", "sim.btb_misses_total"),
                        ("attrib.btb_miss_l1i_hit",
                         "sim.btb_miss_l1i_hit")):
        message = _eq(s, attrib, s[sim], sim)
        if message:
            return message
    return None


def _check_attribution_sbb(s: Snapshot) -> str | None:
    for attrib, sim in (("attrib.sbb_lookups", "sim.sbb_lookups"),
                        ("attrib.sbb_hits_u", "sim.sbb_hits_u"),
                        ("attrib.sbb_hits_r", "sim.sbb_hits_r"),
                        ("attrib.sbb_misses", "sim.sbb_misses")):
        message = _eq(s, attrib, s[sim], sim)
        if message:
            return message
    return None


def _check_attribution_resteers(s: Snapshot) -> str | None:
    for attrib, sim in (("attrib.resteers_total", "sim.resteers_total"),
                        ("attrib.decode_resteers", "sim.decode_resteers"),
                        ("attrib.exec_resteers", "sim.exec_resteers")):
        message = _eq(s, attrib, s[sim], sim)
        if message:
            return message
    # Per-cause equality over the union of both key sets, so a cause
    # present on one side and absent on the other is itself a violation.
    causes = {key.split(".", 2)[2] for key in s
              if key.startswith("attrib.resteer_causes.")}
    causes |= {key.split(".", 2)[2] for key in s
               if key.startswith("sim.resteer_causes.")}
    for cause in sorted(causes):
        attributed = s.get(f"attrib.resteer_causes.{cause}", 0)
        counted = s.get(f"sim.resteer_causes.{cause}", 0)
        if attributed != counted:
            return (f"attrib.resteer_causes.{cause}={attributed} but "
                    f"sim.resteer_causes.{cause}={counted}")
    return None


def _check_attribution_sbd(s: Snapshot) -> str | None:
    for attrib, sim in (("attrib.sbd_head_decodes", "sim.sbd_head_decodes"),
                        ("attrib.sbd_tail_decodes", "sim.sbd_tail_decodes"),
                        ("attrib.sbd_head_discarded",
                         "sim.sbd_head_discarded")):
        message = _eq(s, attrib, s[sim], sim)
        if message:
            return message
    return None


def _check_interval_conservation(s: Snapshot) -> str | None:
    # Every ``intervals.X`` total must equal the matching aggregate
    # ``sim.X`` counter exactly: the window rows partition the counted
    # region, so their column sums telescope to the whole-run value.
    for name in sorted(s):
        if not name.startswith("intervals."):
            continue
        field = name[len("intervals."):]
        if field in ("windows", "interval_size"):
            continue
        sim_key = f"sim.{field}"
        if sim_key not in s:
            continue
        expected = s[sim_key]
        if field == "cycles" and s.get("sim.instructions", 0) == 0:
            # No record retired inside the counted region: the engine
            # epilogue reports a degenerate cycle figure (the whole-run
            # clock, or an epsilon clamp, so rates stay finite) while
            # the series records the true zero counted-region sum.
            continue
        if s[name] != expected:
            return f"{name}={s[name]} but {sim_key}={expected}"
    return None


_SIM_BASE = ("sim.btb_lookups", "sim.branches_total")
_SBB_SIM = ("sim.sbb_lookups", "sim.sbb_misses", "sim.sbb_hits_u",
            "sim.sbb_hits_r")

INVARIANTS: tuple[Invariant, ...] = (
    Invariant("btb_lookups_cover_branches",
              "every executed branch probes the BTB exactly once",
              _check_btb_lookups, requires=_SIM_BASE),
    Invariant("btb_miss_l1i_hit_bounded",
              "shadow-resident misses are a subset of all BTB misses",
              _check_miss_l1i_bounded,
              requires=("sim.btb_miss_l1i_hit", "sim.btb_misses_total")),
    Invariant("cache_hierarchy_monotone",
              "miss counts shrink down the hierarchy",
              _check_cache_monotone,
              requires=("sim.l1i_accesses", "sim.l1i_misses",
                        "sim.l2_misses", "sim.l3_misses")),
    Invariant("mispredicts_bounded",
              "mispredictions never exceed predictions per predictor",
              _check_mispredicts_bounded,
              requires=("sim.cond_predictions", "sim.cond_mispredicts",
                        "sim.indirect_predictions",
                        "sim.indirect_mispredicts",
                        "sim.ras_predictions", "sim.ras_mispredicts")),
    Invariant("ras_underflows_are_mispredicts",
              "a pop on an empty RAS always counts as a mispredict",
              _check_ras_underflows,
              requires=("sim.ras_underflows", "sim.ras_mispredicts")),
    Invariant("resteer_causes_partition",
              "per-cause resteer attribution sums to total resteers",
              _check_resteer_causes, requires=("sim.resteers_total",)),
    Invariant("resteers_bounded",
              "at most one resteer per executed branch",
              _check_resteers_bounded,
              requires=("sim.resteers_total", "sim.branches_total")),
    Invariant("sbb_probe_partition",
              "btb_miss == sbb_hit + sbb_miss (+ comparator hits)",
              _check_sbb_probe_partition,
              requires=_SBB_SIM + ("sim.btb_misses_total",),
              flags=("config.skia_enabled",)),
    Invariant("sbb_hit_miss_partition",
              "every SBB probe is exactly one hit or one miss",
              _check_sbb_hit_miss_partition, requires=_SBB_SIM,
              flags=("config.skia_enabled",)),
    Invariant("comparator_hits_bounded",
              "comparator hits are a subset of BTB misses (the probe "
              "happens only on a miss)",
              _check_comparator_hits_bounded,
              requires=("sim.comparator_hits", "sim.btb_misses_total"),
              flags=("config.comparator_enabled",)),
    Invariant("comparator_structure_bounds",
              "comparator structure hits bounded by probes; counted "
              "post-warm-up hits bounded by whole-run structure hits",
              _check_comparator_structure_bounds,
              requires=("comparator.hits", "comparator.lookups",
                        "sim.comparator_hits")),
    Invariant("sbb_outcomes_bounded",
              "wrong-target and retired-mark events are subsets of hits",
              _check_sbb_outcomes_bounded,
              requires=("sim.sbb_wrong_target", "sim.sbb_retired_marks",
                        "sim.sbb_hits_total")),
    Invariant("trace_drop_accounting",
              "event-trace ring drops equal emitted minus retained and "
              "stay within [0, emitted]",
              _check_trace_drop_accounting,
              requires=("trace.emitted", "trace.retained",
                        "trace.dropped_events")),
    Invariant("sbb_bogus_bounded",
              "bogus insertions are a subset of all insertions",
              _check_sbb_bogus_bounded,
              requires=("sim.sbb_bogus_insertions",
                        "sim.sbb_insertions_total")),
    Invariant("sbd_discards_bounded",
              "discarded head decodes are a subset of head decodes",
              _check_sbd_discard_bounded,
              requires=("sim.sbd_head_discarded", "sim.sbd_head_decodes")),
    Invariant("sbb_structure_accounting",
              "SBB insertions cover evictions plus live occupancy",
              _check_sbb_structure_accounting,
              requires=("sbb.u.insertions", "sbb.u.evictions_bogus_first",
                        "sbb.u.evictions_lru", "sbb.u.occupancy",
                        "sbb.u.hits", "sbb.u.lookups", "sbb.u.entries",
                        "sbb.r.insertions", "sbb.r.evictions_bogus_first",
                        "sbb.r.evictions_lru", "sbb.r.occupancy",
                        "sbb.r.hits", "sbb.r.lookups", "sbb.r.entries")),
    Invariant("ras_structure_accounting",
              "circular-stack conservation of pushes/pops/overwrites",
              _check_ras_structure_accounting,
              requires=("ras.pushes", "ras.pops", "ras.underflows",
                        "ras.overflow_overwrites", "ras.occupancy",
                        "ras.depth")),
    Invariant("btb_structure_bounds",
              "BTB hits bounded by lookups, occupancy by capacity",
              _check_btb_structure_bounds,
              requires=("btb.hits", "btb.lookups", "btb.occupancy",
                        "btb.entries")),
    Invariant("cross_layer_bounds",
              "post-warm-up (sim.*) counters never exceed whole-run "
              "structure counters",
              _check_cross_layer_bounds,
              requires=("sim.btb_lookups", "btb.lookups")),
    Invariant("attribution_btb_conservation",
              "per-branch BTB attribution sums exactly to the aggregate "
              "miss counters (the Figure 1/15 population)",
              _check_attribution_btb,
              requires=("attrib.btb_lookups", "attrib.btb_misses",
                        "attrib.btb_miss_l1i_hit", "sim.btb_lookups",
                        "sim.btb_misses_total", "sim.btb_miss_l1i_hit")),
    Invariant("attribution_sbb_conservation",
              "per-branch U/R-SBB attribution sums exactly to the "
              "aggregate SBB counters",
              _check_attribution_sbb,
              requires=("attrib.sbb_lookups", "attrib.sbb_hits_u",
                        "attrib.sbb_hits_r", "attrib.sbb_misses")
              + _SBB_SIM,
              flags=("config.skia_enabled",)),
    Invariant("attribution_comparator_conservation",
              "per-branch comparator attribution sums exactly to the "
              "aggregate comparator hit counter",
              _check_attribution_comparator,
              requires=("attrib.comparator_hits", "sim.comparator_hits"),
              flags=("config.comparator_enabled",)),
    Invariant("attribution_resteer_conservation",
              "per-branch resteer attribution (total, per stage, per "
              "cause) sums exactly to the aggregate resteer counters",
              _check_attribution_resteers,
              requires=("attrib.resteers_total", "attrib.decode_resteers",
                        "attrib.exec_resteers", "sim.resteers_total",
                        "sim.decode_resteers", "sim.exec_resteers")),
    Invariant("attribution_sbd_conservation",
              "per-line SBD attribution sums exactly to the aggregate "
              "shadow-decode counters",
              _check_attribution_sbd,
              requires=("attrib.sbd_head_decodes",
                        "attrib.sbd_tail_decodes",
                        "attrib.sbd_head_discarded",
                        "sim.sbd_head_decodes", "sim.sbd_tail_decodes",
                        "sim.sbd_head_discarded"),
              flags=("config.skia_enabled",)),
    Invariant("interval_conservation",
              "per-window interval-series column sums equal the "
              "aggregate post-warm-up counters exactly",
              _check_interval_conservation,
              requires=("intervals.windows",)),
)


def check_snapshot(snapshot: Snapshot) -> list[Violation]:
    """Run every applicable invariant; return the violations."""
    violations = []
    for invariant in INVARIANTS:
        if not invariant.applies(snapshot):
            continue
        message = invariant.check(snapshot)
        if message is not None:
            violations.append(Violation(invariant.name, message))
    return violations


def applicable_invariants(snapshot: Snapshot) -> list[str]:
    """Names of the invariants this snapshot can be checked against."""
    return [invariant.name for invariant in INVARIANTS
            if invariant.applies(snapshot)]
