"""Per-cycle pipeline timeline, exported as Chrome trace-event JSON.

The front-end simulator is timeline-algebraic: each FTQ entry carries
explicit IAG/fetch/decode/retire clocks.  :class:`TimelineRecorder`
captures those clocks as *spans* (one track per pipeline stage, one span
per basic block) plus *instant* events for BTB misses, SBB hits and each
resteer cause, and serialises everything in the Chrome trace-event
format -- the JSON dialect ``chrome://tracing`` and Perfetto load
directly.  One simulated cycle maps to one trace-time microsecond, so
the decoder-idle gaps of Figure 18 and the FDIP runahead of Figure 2 are
visible as literal gaps between spans.

Like :class:`repro.obs.trace.EventTrace`, the recorder is a bounded ring
buffer and is entirely opt-in: the engine pays one ``None`` check per
record when no recorder is attached (enable per-run with
``FrontEndConfig(record_timeline=True)`` or
``simulator.attach_timeline(...)``).

:func:`chrome_from_trace_events` additionally converts an *event trace*
(the JSONL ring buffer of :mod:`repro.obs.trace`) into the same format,
using the event sequence number as the time axis -- uniform tooling for
both kinds of dump (``repro stats trace --chrome``).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

#: Track (thread) ids of the pipeline timeline, in display order.
TRACKS = {
    "iag": 1,
    "fetch": 2,
    "decode": 3,
    "retire": 4,
    "sbd.head": 5,
    "sbd.tail": 6,
}

#: Process id / name of the pipeline timeline.
PIPELINE_PID = 1
PIPELINE_PROCESS = "repro-frontend"

#: Process id / name used when converting an EventTrace JSONL dump.
EVENT_TRACE_PID = 2
EVENT_TRACE_PROCESS = "repro-event-trace"
EVENT_TRACE_TRACKS = {"btb": 1, "sbb": 2, "sbd": 3, "resteer": 4}


def _metadata_events(pid: int, process: str,
                     tracks: dict[str, int]) -> list[dict]:
    """Chrome ``M`` events naming the process and its tracks."""
    events = [{"ph": "M", "pid": pid, "name": "process_name",
               "args": {"name": process}}]
    for track, tid in tracks.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_sort_index",
                       "args": {"sort_index": tid}})
    return events


class TimelineRecorder:
    """Ring-buffered pipeline span/instant recorder.

    Events are stored as compact tuples and only expanded to Chrome
    dicts at export time, so recording stays cheap.  ``now`` is a
    scratch timestamp the engine sets before handing control to
    components (the SBD) that emit events but do not own a clock.
    """

    def __init__(self, capacity: int = 262_144):
        if capacity < 1:
            raise ValueError("timeline capacity must be positive")
        self.capacity = capacity
        # ("X"|"i", track, name, ts, dur, args-or-None)
        self._events: deque[tuple] = deque(maxlen=capacity)
        self.emitted = 0
        #: Timestamp context for componentized emitters (set by the engine).
        self.now: float = 0.0

    def span(self, track: str, name: str, start: float, duration: float,
             **args) -> None:
        """A complete ("X") event: ``duration`` cycles on ``track``."""
        self._events.append(("X", track, name, start, duration,
                             args or None))
        self.emitted += 1

    def instant(self, track: str, name: str, ts: float, **args) -> None:
        """A thread-scoped instant ("i") event."""
        self._events.append(("i", track, name, ts, 0.0, args or None))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # -- export ----------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        """Metadata events plus all retained events, sorted by ``ts``.

        Sorting makes the export monotonic even where the simulator's
        per-track clocks interleave (the SBD track follows prefetch
        completion, which is not globally ordered).
        """
        out = _metadata_events(PIPELINE_PID, PIPELINE_PROCESS, TRACKS)
        timed = []
        for phase, track, name, ts, dur, args in self._events:
            event = {"ph": phase, "pid": PIPELINE_PID,
                     "tid": TRACKS.get(track, 99), "name": name,
                     "ts": round(ts, 3)}
            if phase == "X":
                event["dur"] = round(dur, 3)
            else:
                event["s"] = "t"
            if args:
                event["args"] = dict(args)
            timed.append(event)
        timed.sort(key=lambda event: event["ts"])
        return out + timed

    def to_chrome(self, path: str | Path) -> Path:
        """Write a self-contained Chrome trace-event JSON file."""
        path = Path(path)
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "metadata": {
                "tool": "repro.obs.timeline",
                "time_unit": "1 trace us == 1 simulated cycle",
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# EventTrace JSONL -> Chrome conversion
# ----------------------------------------------------------------------

def _event_name(event: dict) -> str:
    """A stable, low-cardinality display name for one trace event."""
    kind = event.get("kind")
    if kind == "btb":
        return "hit" if event.get("hit") else "miss"
    if kind == "sbb":
        return f"hit:{event['which']}" if event.get("hit") else "miss"
    if kind == "sbd":
        return str(event.get("side", "sbd"))
    if kind == "resteer":
        return str(event.get("cause", "unattributed"))
    return str(kind)


def chrome_from_trace_events(events: Iterable[dict]) -> list[dict]:
    """Convert EventTrace dicts into Chrome trace events.

    The event trace has no cycle timestamps, so the monotonic ``seq``
    number becomes the time axis (one event == one trace microsecond);
    what the view shows is event *ordering* and per-kind density, which
    is exactly what the ring buffer captures.  ``trace_header`` objects
    (from :meth:`repro.obs.trace.EventTrace.to_jsonl` dumps) are skipped.
    """
    tracks = dict(EVENT_TRACE_TRACKS)
    out = []
    timed = []
    for event in events:
        kind = event.get("kind")
        if kind == "trace_header":
            continue
        tid = tracks.setdefault(kind, len(tracks) + 1)
        args = {key: value for key, value in event.items()
                if key not in ("kind", "seq")}
        chrome = {"ph": "i", "pid": EVENT_TRACE_PID, "tid": tid,
                  "name": _event_name(event), "s": "t",
                  "ts": float(event.get("seq", len(timed)))}
        if args:
            chrome["args"] = args
        timed.append(chrome)
    timed.sort(key=lambda event: event["ts"])
    out.extend(_metadata_events(EVENT_TRACE_PID, EVENT_TRACE_PROCESS,
                                tracks))
    out.extend(timed)
    return out


def chrome_from_jsonl(in_path: str | Path, out_path: str | Path) -> Path:
    """Convert an EventTrace JSONL dump into a Chrome trace JSON file.

    Warns with :class:`repro.obs.trace.DroppedEventsWarning` when the
    dump's ``trace_header`` records ``dropped > 0`` -- the converted
    timeline is then missing its oldest events, not complete.
    """
    import warnings

    from repro.obs.trace import DroppedEventsWarning

    in_path, out_path = Path(in_path), Path(out_path)
    events = []
    with open(in_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    for event in events:
        if event.get("kind") == "trace_header" and event.get("dropped", 0):
            warnings.warn(
                f"{in_path}: trace header reports {event['dropped']} "
                f"dropped events; the converted timeline is truncated "
                f"(re-dump with a larger trace capacity)",
                DroppedEventsWarning, stacklevel=2)
    payload = {
        "traceEvents": chrome_from_trace_events(events),
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro.obs.timeline",
                     "source": str(in_path),
                     "time_unit": "1 trace us == 1 trace sequence number"},
    }
    out_path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return out_path
