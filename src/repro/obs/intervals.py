"""Interval telemetry: time-resolved ``SimStats`` windows.

Whole-run counters cannot show phase behaviour -- BTB/SBB warm-up and
fill, retired-bit priority flips under phase shifts -- so the collector
here cuts the cumulative counters into fixed windows of
``FrontEndConfig.interval_size`` retired records.  Window boundaries are
defined on the *record index*, which all three execution paths (object
loop, compiled loop, batched lane kernel) step identically, so the
resulting :class:`IntervalSeries` is bit-identical across engines and
across serial vs parallel harness runs.

Two invariants shape the implementation:

* ``SimStats.instructions/blocks/cycles`` are only assigned in the
  engine epilogue, so the engines *inject* their loop-local counted
  values and the running cycle mark at each boundary
  (:meth:`IntervalCollector.boundary`).
* Every other counter is cumulative and monotone, so per-window rows
  are exact telescoping differences -- column sums equal the aggregate
  counters exactly (the ``interval_conservation`` invariant).  Cycle
  deltas telescope exactly too: all clock arithmetic is in multiples of
  1/``backend_effective_width`` with power-of-two widths.

The collector accepts an optional ``state_probe`` callable sampled at
boundaries only; the divergence bisector uses it for rolling
microarchitectural occupancy hashes.  Probe results never enter the
serialized series.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.frontend.stats import SimStats

#: Bumped when the serialized series shape changes.
INTERVAL_SCHEMA_VERSION = 1

_SPARK_BARS = "▁▂▃▄▅▆▇█"

#: Below this a cycle delta is "no counted progress" (the engine clamps
#: an all-warmup run's cycles to 1e-9, not 0).
_ZERO = 1e-12


@dataclass
class IntervalSeries:
    """Columnar per-window counter deltas with a content fingerprint."""

    interval_size: int
    warmup: int
    ends: list[int] = field(default_factory=list)
    columns: dict[str, list[float]] = field(default_factory=dict)

    @property
    def windows(self) -> int:
        return len(self.ends)

    @property
    def starts(self) -> list[int]:
        """Window start record indices (derived: previous window's end)."""
        return [0] + self.ends[:-1]

    def column(self, name: str) -> list[float]:
        return self.columns.get(name, [0] * self.windows)

    def totals(self) -> dict[str, float]:
        """Column sums; equals the aggregate ``SimStats`` counters."""
        return {name: sum(values) for name, values in self.columns.items()}

    # -- serialization --------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "schema_version": INTERVAL_SCHEMA_VERSION,
            "interval_size": self.interval_size,
            "warmup": self.warmup,
            "ends": list(self.ends),
            "columns": {name: list(values)
                        for name, values in sorted(self.columns.items())},
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping) -> "IntervalSeries":
        version = payload.get("schema_version")
        if version != INTERVAL_SCHEMA_VERSION:
            raise ValueError(
                f"interval series schema {version!r} != "
                f"{INTERVAL_SCHEMA_VERSION}")
        return cls(interval_size=int(payload["interval_size"]),
                   warmup=int(payload["warmup"]),
                   ends=[int(end) for end in payload["ends"]],
                   columns={str(name): list(values)
                            for name, values in payload["columns"].items()})

    def to_json_text(self) -> str:
        """Canonical byte-stable serialization (fingerprint input)."""
        return json.dumps(self.to_jsonable(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        return hashlib.sha256(
            self.to_json_text().encode("utf-8")).hexdigest()[:16]

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_jsonable(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def load(cls, path) -> "IntervalSeries":
        from pathlib import Path

        return cls.from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8")))

    # -- derived per-window metrics ------------------------------------

    def metric_names(self) -> list[str]:
        """Plottable derived metrics for this series."""
        names = ["ipc", "btb_miss_mpki", "rescue_rate"]
        names.extend(sorted(
            name.replace("resteer_causes.", "resteer:", 1)
            for name in self.columns if name.startswith("resteer_causes.")))
        return names

    def metric_series(self, metric: str) -> list[float]:
        """Per-window values of a derived metric or raw column."""
        if metric == "ipc":
            return [instr / cycles if cycles > _ZERO else 0.0
                    for instr, cycles in zip(self.column("instructions"),
                                             self.column("cycles"))]
        if metric == "btb_miss_mpki":
            misses = self._btb_miss_column()
            return [1000.0 * miss / instr if instr else 0.0
                    for miss, instr in zip(misses,
                                           self.column("instructions"))]
        if metric == "rescue_rate":
            hits = [u + r for u, r in zip(self.column("sbb_hits_u"),
                                          self.column("sbb_hits_r"))]
            return [hit / miss if miss else 0.0
                    for hit, miss in zip(hits, self._btb_miss_column())]
        if metric.startswith("resteer:"):
            return self.column("resteer_causes." + metric[len("resteer:"):])
        if metric in self.columns:
            return [float(value) for value in self.columns[metric]]
        raise KeyError(f"unknown interval metric {metric!r}; "
                       f"try one of {self.metric_names()}")

    def _btb_miss_column(self) -> list[float]:
        misses = [0.0] * self.windows
        for name, values in self.columns.items():
            if name.startswith("btb_misses."):
                misses = [total + value
                          for total, value in zip(misses, values)]
        return misses

    # -- rendering ------------------------------------------------------

    def render_markdown(self, metrics: Sequence[str] | None = None) -> str:
        """Markdown time-series table plus one sparkline per metric."""
        metrics = list(metrics or self.metric_names())
        series = {metric: self.metric_series(metric) for metric in metrics}
        lines = [f"interval_size={self.interval_size} "
                 f"warmup={self.warmup} windows={self.windows} "
                 f"fingerprint={self.fingerprint()}", ""]
        for metric in metrics:
            lines.append(f"    {metric:24s} {sparkline(series[metric])}")
        lines.append("")
        lines.append("| window | start | end | " + " | ".join(metrics) + " |")
        lines.append("|---" * (3 + len(metrics)) + "|")
        for index, (start, end) in enumerate(zip(self.starts, self.ends)):
            cells = [f"{series[metric][index]:.4g}" for metric in metrics]
            lines.append(f"| {index} | {start} | {end} | "
                         + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"


def sparkline(values: Sequence[float]) -> str:
    """Unicode block-bar rendering, scaled to the series maximum."""
    if not values:
        return ""
    top = max(values)
    if top <= _ZERO:
        return _SPARK_BARS[0] * len(values)
    scale = (len(_SPARK_BARS) - 1) / top
    return "".join(_SPARK_BARS[int(round(max(value, 0.0) * scale))]
                   for value in values)


def diff_series(a: IntervalSeries, b: IntervalSeries,
                ) -> list[tuple[int, str, float, float]]:
    """Per-window differences ``(window, column, a_value, b_value)``.

    Geometry differences (window count, boundary placement) surface as
    pseudo-columns ``~windows`` / ``~end``; columns absent on one side
    compare against zero.  Empty result means byte-identical content.
    """
    out: list[tuple[int, str, float, float]] = []
    if a.windows != b.windows:
        out.append((-1, "~windows", a.windows, b.windows))
    for index in range(min(a.windows, b.windows)):
        if a.ends[index] != b.ends[index]:
            out.append((index, "~end", a.ends[index], b.ends[index]))
    names = sorted(set(a.columns) | set(b.columns))
    for index in range(min(a.windows, b.windows)):
        for name in names:
            a_val = a.column(name)[index]
            b_val = b.column(name)[index]
            if a_val != b_val:
                out.append((index, name, a_val, b_val))
    return out


class IntervalCollector:
    """Accumulates per-window delta rows during a run.

    The engines call :meth:`boundary` when the record index crosses a
    multiple of ``interval_size`` and :meth:`finish` once before the
    epilogue; both inject the loop-local progress counters
    (``instructions``/``blocks``) and the running cycle mark, because
    ``SimStats`` only carries those after the epilogue.  Everything
    else is read from the cumulative stats object and differenced
    against the previous boundary's row.
    """

    def __init__(self, interval_size: int,
                 state_probe: Callable[[], object] | None = None):
        if interval_size < 0:
            raise ValueError("interval_size must be >= 0")
        self.interval_size = interval_size
        self.warmup = 0
        self.state_probe = state_probe
        self.rows: list[dict[str, float]] = []
        self.ends: list[int] = []
        self.state_marks: list[object] = []
        self._prev: dict[str, float] | None = None

    @property
    def windows(self) -> int:
        return len(self.ends)

    def boundary(self, end_index: int, stats: SimStats, instructions: int,
                 blocks: int, cycle_mark: float) -> None:
        """Cut a window ending at ``end_index`` (exclusive record index)."""
        row = stats.snapshot_row()
        row["instructions"] = instructions
        row["blocks"] = blocks
        row["cycles"] = cycle_mark
        prev = self._prev
        if prev is None:
            delta = dict(row)
        else:
            delta = {name: value - prev.get(name, 0)
                     for name, value in row.items()}
        self.rows.append(delta)
        self.ends.append(end_index)
        self._prev = row
        if self.state_probe is not None:
            self.state_marks.append(self.state_probe())

    def finish(self, end_index: int, stats: SimStats, instructions: int,
               blocks: int, cycle_mark: float) -> None:
        """Emit the final partial window, if any records remain.

        A trace whose length is an exact multiple of the window size
        already cut its last window in the loop; a trace shorter than
        one window gets exactly one window here.
        """
        if end_index and (not self.ends or end_index > self.ends[-1]):
            self.boundary(end_index, stats, instructions, blocks, cycle_mark)

    def series(self) -> IntervalSeries:
        """Freeze into a columnar series (key union, zeros backfilled)."""
        names: set[str] = set()
        for row in self.rows:
            names.update(row)
        columns = {name: [row.get(name, 0) for row in self.rows]
                   for name in sorted(names)}
        return IntervalSeries(interval_size=self.interval_size,
                              warmup=self.warmup, ends=list(self.ends),
                              columns=columns)

    def snapshot(self) -> dict[str, float]:
        """``intervals.*`` keys for metric snapshots.

        ``intervals.windows`` plus one ``intervals.<column>`` total per
        counter -- the flat form the ``interval_conservation`` invariant
        checks against the matching ``sim.<column>`` aggregates.
        """
        series = self.series()
        out: dict[str, float] = {"intervals.windows": series.windows,
                                 "intervals.interval_size":
                                     series.interval_size}
        for name, total in series.totals().items():
            out[f"intervals.{name}"] = total
        return out
