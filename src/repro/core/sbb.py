"""Shadow Branch Buffer (Section 4.2, Figure 12).

Two set-associative structures accessed in parallel with the BTB:

* **U-SBB** stores direct unconditional branches and calls.  An entry is
  78 bits: 10b tag + valid + LRU + retired bit + 64b target.
* **R-SBB** stores returns.  An entry is 20 bits: 10b tag + valid + LRU +
  retired bit + 6b in-line offset.  Returns need no target (the RAS
  provides it), which is why the paper gives them their own, far denser
  structure -- the default 12.25KB budget buys 768 U entries but 2024 R
  entries.

Replacement (Section 4.3): LRU, except entries whose *retired* bit is
clear are evicted first.  The retired bit is set when a branch target
provided by the SBB commits, so never-confirmed ("bogus") entries are the
first to go and useful entries persist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.config import SkiaConfig


@dataclass(slots=True)
class SBBEntry:
    """One SBB entry; ``payload`` is the target (U) or line offset (R)."""

    tag: int
    payload: int
    retired: bool = False


class SBBStructure:
    """One of the two SBB halves: set-associative, LRU + retired-first."""

    def __init__(self, entries: int, assoc: int, tag_bits: int,
                 entry_bits: int, name: str, use_retired_bit: bool = True):
        if entries and entries < assoc:
            raise ValueError(f"{name}: entries {entries} < assoc {assoc}")
        self.name = name
        self.use_retired_bit = use_retired_bit
        self.assoc = assoc
        self.tag_bits = tag_bits
        self.entry_bits = entry_bits
        # entries == 0 builds a disabled structure (used by the Figure 17
        # U/R-split sweep endpoints).
        self.n_sets = entries // assoc
        self.entries = self.n_sets * assoc
        # Per set: insertion-ordered dict {tag: SBBEntry}; last = MRU.
        self._sets: list[dict[int, SBBEntry]] = [dict() for _ in range(self.n_sets)]
        self.insertions = 0
        self.evictions_bogus_first = 0
        self.evictions_lru = 0
        self.lookups = 0
        self.hits = 0
        self.retired_marks = 0

    def _index_tag(self, pc: int) -> tuple[int, int]:
        # Same folded indexing as the BTB (see btb.py): spreads
        # stride-aligned PCs across sets.
        word = pc >> 1
        index = (word ^ (word >> 11) ^ (word >> 23)) % self.n_sets
        tag = (word // self.n_sets) & ((1 << self.tag_bits) - 1)
        return index, tag

    def lookup(self, pc: int) -> SBBEntry | None:
        self.lookups += 1
        if not self.n_sets:
            return None
        index, tag = self._index_tag(pc)
        way = self._sets[index]
        entry = way.get(tag)
        if entry is None:
            return None
        del way[tag]
        way[tag] = entry  # move to MRU
        self.hits += 1
        return entry

    def insert(self, pc: int, payload: int) -> None:
        if not self.n_sets:
            return
        index, tag = self._index_tag(pc)
        way = self._sets[index]
        self.insertions += 1
        existing = way.get(tag)
        if existing is not None:
            # Refresh payload, keep the retired bit, move to MRU.
            del way[tag]
            existing.payload = payload
            way[tag] = existing
            return
        if len(way) >= self.assoc:
            self._evict(way)
        way[tag] = SBBEntry(tag=tag, payload=payload)

    def _evict(self, way: dict[int, SBBEntry]) -> None:
        """Evict the LRU non-retired entry; fall back to plain LRU."""
        if self.use_retired_bit:
            for tag, entry in way.items():  # iteration order = LRU -> MRU
                if not entry.retired:
                    del way[tag]
                    self.evictions_bogus_first += 1
                    return
        del way[next(iter(way))]
        self.evictions_lru += 1

    def mark_retired(self, pc: int) -> bool:
        """Set the retired bit without perturbing LRU order."""
        if not self.n_sets:
            return False
        index, tag = self._index_tag(pc)
        entry = self._sets[index].get(tag)
        if entry is None:
            return False
        entry.retired = True
        self.retired_marks += 1
        return True

    def occupancy(self) -> int:
        return sum(len(way) for way in self._sets)

    @property
    def size_bytes(self) -> float:
        return self.entries * self.entry_bits / 8

    def flush(self) -> None:
        for way in self._sets:
            way.clear()

    def register_metrics(self, scope) -> None:
        """Expose counters as lazily-sampled gauges (repro.obs)."""
        scope.gauge("lookups", lambda: self.lookups)
        scope.gauge("hits", lambda: self.hits)
        scope.gauge("insertions", lambda: self.insertions)
        scope.gauge("evictions_bogus_first",
                    lambda: self.evictions_bogus_first)
        scope.gauge("evictions_lru", lambda: self.evictions_lru)
        scope.gauge("retired_marks", lambda: self.retired_marks)
        scope.gauge("occupancy", self.occupancy)
        scope.gauge("entries", lambda: self.entries)


class ShadowBranchBuffer:
    """The U-SBB + R-SBB pair."""

    def __init__(self, config: SkiaConfig):
        self.config = config
        self.usbb = SBBStructure(config.usbb_entries, config.usbb_assoc,
                                 config.usbb_tag_bits, config.usbb_entry_bits,
                                 name="U-SBB",
                                 use_retired_bit=config.use_retired_bit)
        self.rsbb = SBBStructure(config.rsbb_entries, config.rsbb_assoc,
                                 config.rsbb_tag_bits, config.rsbb_entry_bits,
                                 name="R-SBB",
                                 use_retired_bit=config.use_retired_bit)

    def insert_unconditional(self, pc: int, target: int) -> None:
        self.usbb.insert(pc, target)

    def insert_return(self, pc: int, line_size: int = 64) -> None:
        self.rsbb.insert(pc, pc % line_size)

    def lookup(self, pc: int) -> tuple[str, SBBEntry] | None:
        """Parallel probe of both halves; U-SBB wins a double hit."""
        entry = self.usbb.lookup(pc)
        if entry is not None:
            return "u", entry
        entry = self.rsbb.lookup(pc)
        if entry is not None:
            return "r", entry
        return None

    def mark_retired(self, pc: int, which: str) -> bool:
        structure = self.usbb if which == "u" else self.rsbb
        return structure.mark_retired(pc)

    @property
    def size_bytes(self) -> float:
        return self.usbb.size_bytes + self.rsbb.size_bytes

    @property
    def size_kib(self) -> float:
        return self.size_bytes / 1024

    def register_metrics(self, scope) -> None:
        """Register both halves as ``<scope>.u`` / ``<scope>.r``."""
        self.usbb.register_metrics(scope.scope("u"))
        self.rsbb.register_metrics(scope.scope("r"))
