"""Shadow Branch Decoder (Sections 3.1-3.4).

Decodes the unused bytes of cache lines that FDIP has already brought
into the front-end:

* **Tail decoding** (Section 3.3): after a taken branch leaves a line,
  the first shadow byte is a known instruction boundary, so a single
  linear sweep from the branch's end to the line's end suffices.

* **Head decoding** (Section 3.2): the bytes from the line start to the
  FTQ entry point have *unknown* instruction boundaries in a variable-
  length ISA.  The decoder runs the paper's two phases:

  1. *Index Computation* -- for every byte offset in the head region,
     record the length of the instruction that would start there (0 when
     no valid instruction starts there), producing the ``Length`` vector
     of Figure 9.
  2. *Path Validation* -- walk each candidate start offset through the
     Length vector; a path is valid iff it lands exactly on the entry
     offset.  Lines with more than ``max_valid_paths`` valid paths are
     discarded (too ambiguous).  Among valid paths, the *Valid Index*
     policy picks which instructions to trust: ``FIRST`` (the first
     offset with a valid path -- the paper's best), ``ZERO`` (offset 0
     when valid), or ``MERGE`` (the common convergence point).

Decoded direct unconditional jumps/calls and returns are handed to the
SBB.  Results are memoised per (line, boundary) because hot lines are
re-decoded constantly.

Caching (the per-cycle hot path)
--------------------------------
Program images are immutable, so every decode result is a pure function
of (line address, boundary offset) and caching needs no invalidation.
Three bounded LRU caches cooperate:

* a **line decode cache** holding, per cache line, the instruction that
  would start at *every* byte offset of the line (decoded against the
  line-end limit).  Index Computation for any entry offset, the chosen-
  path walk, and tail sweeps all read from this one vector, so a line
  entered at several different offsets decodes its bytes exactly once;
* the **head memo** per (line, entry offset) and the **tail memo** per
  (line, exit offset), which make repeats of the same boundary free.

A shorter decode limit can only turn a full-line decode result into
``None`` -- never into a *different* instruction -- so a full-line decode
whose length fits below the entry offset is byte-for-byte what a
limit-at-entry decode would produce; the length-vector filter encodes
exactly that.

Behind the per-decoder caches sits a fourth layer: the process-wide
:mod:`repro.core.decode_tables` registry, content-addressed by image
digest.  Every decode result is a pure function of the image bytes (plus
the head policy), so decoders built over the same program -- one per
(workload, config) grid cell -- share results instead of each paying the
byte-by-byte decode.  The per-decoder LRU caches still see exactly the
same get/put sequence either way (their counters are part of the metric
snapshots the bit-exactness suite compares); sharing only changes what a
*miss* costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching import CacheStats, LRUCache
from repro.core.decode_tables import shared_tables
from repro.isa.branch import BranchKind
from repro.isa.decoder import decode_at
from repro.frontend.config import IndexPolicy, SkiaConfig
from repro.obs.profiler import PROFILER

#: Default bounds for the per-decoder caches.  16K lines covers a 1MB
#: image completely; 64K (line, offset) results cover every boundary of
#: that image.  Long multi-program sweeps evict cold lines instead of
#: growing without limit.
DEFAULT_LINE_CACHE_LINES = 16_384
DEFAULT_RESULT_MEMO_SIZE = 65_536


@dataclass(frozen=True)
class ShadowBranch:
    """A branch found in a shadow region."""

    pc: int
    kind: BranchKind
    target: int | None  # None for returns


@dataclass
class HeadDecodeResult:
    """Outcome of head-decoding one (line, entry_offset) pair."""

    branches: list[ShadowBranch] = field(default_factory=list)
    valid_paths: int = 0
    discarded: bool = False
    chosen_start: int | None = None
    decoded_pcs: list[int] = field(default_factory=list)


@dataclass
class TailDecodeResult:
    """Outcome of tail-decoding one (line, exit_offset) pair."""

    branches: list[ShadowBranch] = field(default_factory=list)
    decoded_pcs: list[int] = field(default_factory=list)


class ShadowBranchDecoder:
    """Stateless-per-line decoder over a program image, with memoisation."""

    def __init__(self, image: bytes, base_address: int,
                 config: SkiaConfig, line_size: int = 64,
                 line_cache_lines: int | None = DEFAULT_LINE_CACHE_LINES,
                 result_memo_size: int | None = DEFAULT_RESULT_MEMO_SIZE,
                 shared: bool = True):
        self.image = image
        self.base_address = base_address
        self.config = config
        self.line_size = line_size
        self._head_memo = LRUCache(maxsize=result_memo_size)
        self._tail_memo = LRUCache(maxsize=result_memo_size)
        self._line_cache = LRUCache(maxsize=line_cache_lines)
        # Process-wide backing store (repro.core.decode_tables): misses
        # another decoder over the same image already computed become
        # dict reads.  ``shared=False`` keeps a decoder fully isolated
        # (tests that probe the raw decode path use it).
        if shared:
            tables = shared_tables(image, base_address, line_size)
            self._shared_lines = tables.lines
            self._shared_tails = tables.tails
            self._shared_heads = tables.heads_for(
                config.max_valid_paths, config.index_policy)
        else:
            self._shared_lines = None
            self._shared_tails = None
            self._shared_heads = None

    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction counters for the three decode caches."""
        return {
            "head_memo": self._head_memo.stats,
            "tail_memo": self._tail_memo.stats,
            "line_cache": self._line_cache.stats,
        }

    def register_metrics(self, scope) -> None:
        """Expose the decode-cache counters as gauges (repro.obs)."""
        for name, cache in (("head_memo", self._head_memo),
                            ("tail_memo", self._tail_memo),
                            ("line_cache", self._line_cache)):
            sub = scope.scope(name)
            sub.gauge("hits", lambda c=cache: c.hits)
            sub.gauge("misses", lambda c=cache: c.misses)
            sub.gauge("evictions", lambda c=cache: c.evictions)
            sub.gauge("size", lambda c=cache: len(c))

    # ------------------------------------------------------------------
    # Per-line decode vector
    # ------------------------------------------------------------------

    def _line_decodes(self, line: int) -> list:
        """The instruction starting at every byte offset of ``line``.

        Decoded against the line-end limit (clamped to the image), with
        correct virtual PCs, so entries can be shared between Index
        Computation, path walks, and tail sweeps.  Offsets outside the
        image decode to ``None``.
        """
        cached = self._line_cache.get(line)
        if cached is not None:
            return cached
        shared = self._shared_lines
        decodes = None if shared is None else shared.get(line)
        if decodes is None:
            decodes = self._compute_line_decodes(line)
            if shared is not None:
                shared[line] = decodes
        self._line_cache[line] = decodes
        return decodes

    def _compute_line_decodes(self, line: int) -> list:
        # Profiled on shared-table misses only -- each line of an image
        # decodes once per process -- and only when the profiler is on,
        # so the disabled path pays nothing (tests/obs/test_overhead.py).
        if PROFILER.enabled:
            with PROFILER.section("sbd.line_decode"):
                return self._decode_line(line)
        return self._decode_line(line)

    def _decode_line(self, line: int) -> list:
        image_base = line - self.base_address
        limit = min(image_base + self.line_size, len(self.image))
        return [
            decode_at(self.image, image_base + offset,
                      pc=line + offset, limit=limit)
            for offset in range(self.line_size)
        ]

    # ------------------------------------------------------------------
    # Tail decoding
    # ------------------------------------------------------------------

    def decode_tail(self, exit_pc: int) -> TailDecodeResult:
        """Decode from ``exit_pc`` (first byte after a taken branch) to
        the end of the branch's cache line.

        The branch's last byte is at ``exit_pc - 1``; the shadow region is
        the rest of that line.  Empty when the branch ends the line.
        """
        last_line = (exit_pc - 1) & ~(self.line_size - 1)
        line_end = last_line + self.line_size
        if exit_pc >= line_end:
            return TailDecodeResult()
        key = (last_line, exit_pc - last_line)
        memo = self._tail_memo.get(key)
        if memo is None:
            memo = self._tail_missing(key, exit_pc, line_end)
            self._tail_memo[key] = memo
        return memo

    def _tail_missing(self, key: tuple[int, int], exit_pc: int,
                      line_end: int) -> TailDecodeResult:
        """Resolve a tail-memo miss: shared table first, then sweep.

        On a shared hit the line vector a local sweep would have read is
        still touched through :meth:`_line_decodes`, so the per-decoder
        line-cache counters follow the exact sequence of a cold decoder
        (the metric snapshots are compared bit-for-bit across engines).
        """
        shared = self._shared_tails
        if shared is not None:
            memo = shared.get(key)
            if memo is not None:
                offset = exit_pc - self.base_address
                if 0 <= offset < len(self.image):
                    self._line_decodes(line_end - self.line_size)
                return memo
        if PROFILER.enabled:
            with PROFILER.section("sbd.tail_decode"):
                memo = self._sweep(exit_pc, line_end)
        else:
            memo = self._sweep(exit_pc, line_end)
        if shared is not None:
            shared[key] = memo
        return memo

    def _sweep(self, start_pc: int, limit_pc: int) -> TailDecodeResult:
        result = TailDecodeResult()
        offset = start_pc - self.base_address
        if offset < 0 or offset >= len(self.image):
            return result
        line = limit_pc - self.line_size
        decodes = self._line_decodes(line)
        position = start_pc - line
        while position < self.line_size:
            decoded = decodes[position]
            if decoded is None:
                break
            result.decoded_pcs.append(decoded.pc)
            if decoded.kind.sbb_eligible:
                result.branches.append(ShadowBranch(
                    pc=decoded.pc, kind=decoded.kind, target=decoded.target))
            position += decoded.length
        return result

    # ------------------------------------------------------------------
    # Head decoding
    # ------------------------------------------------------------------

    def decode_head(self, entry_pc: int) -> HeadDecodeResult:
        """Decode the head shadow region of ``entry_pc``'s cache line.

        ``entry_pc`` is the FTQ entry point (a branch target); the shadow
        region is from the line start up to (excluding) ``entry_pc``.
        """
        line = entry_pc & ~(self.line_size - 1)
        entry_offset = entry_pc - line
        if entry_offset == 0:
            return HeadDecodeResult()
        key = (line, entry_offset)
        memo = self._head_memo.get(key)
        if memo is None:
            memo = self._head_missing(key, line, entry_offset)
            self._head_memo[key] = memo
        return memo

    def _head_missing(self, key: tuple[int, int], line: int,
                      entry_offset: int) -> HeadDecodeResult:
        """Resolve a head-memo miss: shared table first, then decode.

        A local head decode reads the line vector twice (the region walk
        and Index Computation); a shared hit replays those two touches so
        the line-cache counter sequence matches a cold decoder exactly.
        """
        shared = self._shared_heads
        if shared is not None:
            memo = shared.get(key)
            if memo is not None:
                image_base = line - self.base_address
                if 0 <= image_base < len(self.image):
                    self._line_decodes(line)
                    self._line_decodes(line)
                return memo
        if PROFILER.enabled:
            with PROFILER.section("sbd.head_decode"):
                memo = self._decode_head_region(line, entry_offset)
        else:
            memo = self._decode_head_region(line, entry_offset)
        if shared is not None:
            shared[key] = memo
        return memo

    def _decode_head_region(self, line: int, entry_offset: int) -> HeadDecodeResult:
        image_base = line - self.base_address
        if image_base < 0 or image_base >= len(self.image):
            return HeadDecodeResult()

        decodes = self._line_decodes(line)
        lengths = self._index_computation(image_base, entry_offset)
        valid_starts = self._path_validation(lengths, entry_offset)

        result = HeadDecodeResult(valid_paths=len(valid_starts))
        if not valid_starts:
            return result
        if len(valid_starts) > self.config.max_valid_paths:
            result.discarded = True
            return result

        start = self._choose_start(valid_starts, lengths, entry_offset)
        result.chosen_start = start

        # Walk the chosen path and collect eligible branches.  Every step
        # fits below the entry offset (the path validated), so the full-
        # line decodes are exactly what a limit-at-entry decode yields.
        offset = start
        while offset < entry_offset:
            decoded = decodes[offset]
            if decoded is None:  # pragma: no cover - path was validated
                break
            result.decoded_pcs.append(decoded.pc)
            if decoded.kind.sbb_eligible:
                result.branches.append(ShadowBranch(
                    pc=decoded.pc, kind=decoded.kind, target=decoded.target))
            offset += decoded.length
        return result

    def _index_computation(self, image_base: int,
                           entry_offset: int) -> list[int]:
        """Phase 1: the Length vector (0 = no valid instruction here).

        Reads the shared line decode vector; an instruction that would
        cross the entry boundary records 0, matching a decode performed
        with the entry offset as its limit.
        """
        decodes = self._line_decodes(self.base_address + image_base)
        lengths = []
        for offset in range(entry_offset):
            decoded = decodes[offset]
            length = 0 if decoded is None else decoded.length
            if length and offset + length > entry_offset:
                length = 0
            lengths.append(length)
        return lengths

    def _path_validation(self, lengths: list[int],
                         entry_offset: int) -> list[int]:
        """Phase 2: start offsets whose paths land exactly on the entry.

        Memoised right-to-left: ``reaches[p]`` is True when a walk from
        position ``p`` aligns with the entry offset, so validating all
        starts is O(region length).
        """
        reaches = [False] * (entry_offset + 1)
        reaches[entry_offset] = True
        for position in range(entry_offset - 1, -1, -1):
            length = lengths[position]
            if length and position + length <= entry_offset:
                reaches[position] = reaches[position + length]
        return [start for start in range(entry_offset) if reaches[start]]

    def _choose_start(self, valid_starts: list[int], lengths: list[int],
                      entry_offset: int) -> int:
        policy = self.config.index_policy
        if policy is IndexPolicy.ZERO:
            return 0 if valid_starts[0] == 0 else valid_starts[0]
        if policy is IndexPolicy.MERGE:
            return self._merge_index(valid_starts, lengths, entry_offset)
        return valid_starts[0]  # FIRST

    def _merge_index(self, valid_starts: list[int], lengths: list[int],
                     entry_offset: int) -> int:
        """The most common recent position among all valid paths."""
        visit_counts: dict[int, int] = {}
        for start in valid_starts:
            position = start
            while position < entry_offset:
                visit_counts[position] = visit_counts.get(position, 0) + 1
                position += lengths[position]
        # Most shared; ties broken toward the most recent (largest) index.
        best = max(visit_counts.items(), key=lambda item: (item[1], item[0]))
        return best[0]
