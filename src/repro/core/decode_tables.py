"""Process-level shared decode tables, content-addressed per image.

Every Shadow Branch Decoder result is a pure function of the program
bytes: the per-line decode vector depends on ``(image, base_address,
line_size)``; a tail sweep additionally on the exit boundary; a head
region additionally on the boundary *and* the decode policy
(``max_valid_paths``, ``index_policy``).  A grid run builds one
:class:`~repro.core.sbd.ShadowBranchDecoder` per (workload, config)
cell, and before this module each of those decoders re-derived the same
vectors from the same bytes -- ``sbd.line_decode`` alone was ~20-27% of
cold cell time.

:func:`shared_tables` hands every decoder over the same image a single
:class:`SharedDecodeTables` instance, keyed by the SHA-256 of the image
bytes (content-addressed: a different program can never alias, and the
key doubles as the invalidation rule -- new bytes, new tables).  The
tables are a *backing store behind* each decoder's own LRU caches, not a
replacement for them: a decoder still performs exactly the same
get/put sequence on its ``line_cache`` / ``head_memo`` / ``tail_memo``
(those counters are part of the metric snapshot the bit-exactness tests
compare), but a miss that some earlier decoder already paid for becomes
a dictionary read instead of a byte-by-byte decode.

Results stored here are treated as immutable by every consumer (the
decoder and the batched kernel only read ``branches`` /
``decoded_pcs``), so sharing one result object across decoders is safe.

The registry is process-local and bounded (:data:`MAX_IMAGES` images,
LRU): long multi-program sweeps evict the coldest image's tables
wholesale.  Worker processes build their own registry, which is exactly
the sharing scope we want -- each worker decodes a hot image once.
"""

from __future__ import annotations

import hashlib

from repro.caching import CacheStats, LRUCache

#: Images whose tables are retained; evicting wholesale keeps the bound
#: simple and an 8-image working set covers every stock grid.
MAX_IMAGES = 8


class SharedDecodeTables:
    """All shared decode state of one ``(image, base, line_size)``."""

    __slots__ = ("key", "lines", "tails", "_heads")

    def __init__(self, key: tuple):
        self.key = key
        #: {line_addr: decode vector} -- the full-line decode list.
        self.lines: dict[int, list] = {}
        #: {(last_line, exit_offset): TailDecodeResult}.
        self.tails: dict[tuple[int, int], object] = {}
        # Head results depend on the decode policy; one table per
        # (max_valid_paths, index_policy) pair.
        self._heads: dict[tuple, dict] = {}

    def heads_for(self, max_valid_paths: int, index_policy) -> dict:
        """The ``{(line, entry_offset): HeadDecodeResult}`` table for one
        decode policy."""
        key = (max_valid_paths, index_policy)
        table = self._heads.get(key)
        if table is None:
            table = self._heads[key] = {}
        return table

    def result_count(self) -> int:
        return (len(self.lines) + len(self.tails)
                + sum(len(t) for t in self._heads.values()))


_REGISTRY = LRUCache(maxsize=MAX_IMAGES)


def shared_tables(image: bytes, base_address: int,
                  line_size: int) -> SharedDecodeTables:
    """The process-wide tables for ``(image, base_address, line_size)``.

    The SHA-256 digest makes the key content-addressed; hashing happens
    once per decoder construction (microseconds against a cell's
    seconds), never on the decode path.
    """
    key = (hashlib.sha256(image).hexdigest(), base_address, line_size)
    tables = _REGISTRY.get(key)
    if tables is None:
        tables = SharedDecodeTables(key)
        _REGISTRY[key] = tables
    return tables


def registry_stats() -> CacheStats:
    """Hit/miss/eviction counters of the image registry."""
    return _REGISTRY.stats


def shared_result_count() -> int:
    """Total decode results currently shared (bench/debug surface)."""
    return sum(_REGISTRY.peek(key).result_count() for key in _REGISTRY)


def reset() -> None:
    """Drop every shared table (benchmark isolation hook).

    Live decoders keep references to the tables they resolved at
    construction; only *future* decoders start cold.
    """
    _REGISTRY.clear()
