"""Skia: shadow branch decoding (the paper's contribution).

Three pieces, mirroring Figure 11:

* :class:`~repro.core.sbd.ShadowBranchDecoder` -- identifies and decodes
  branches in the unused (shadow) bytes of cache lines entering the
  front-end: *head* regions (line start to the FTQ entry point) via the
  two-phase Index Computation / Path Validation algorithm of Section 3.2,
  and *tail* regions (taken-branch exit to line end) via a linear sweep
  (Section 3.3).
* :class:`~repro.core.sbb.ShadowBranchBuffer` -- the U-SBB/R-SBB pair
  that stores decoded shadow branches off the BTB's critical path, with
  LRU + retired-bit replacement (Section 4.2/4.3).
* :class:`~repro.core.skia.Skia` -- wires the decoder and buffer into the
  front-end: SBD runs on FTQ-entry prefetch completion; the SBB is looked
  up in parallel with the BTB.
"""

from repro.core.sbb import SBBEntry, SBBStructure, ShadowBranchBuffer
from repro.core.sbd import HeadDecodeResult, ShadowBranch, ShadowBranchDecoder
from repro.core.skia import Skia

__all__ = [
    "SBBEntry",
    "SBBStructure",
    "ShadowBranchBuffer",
    "HeadDecodeResult",
    "ShadowBranch",
    "ShadowBranchDecoder",
    "Skia",
]
