"""Skia integration component (Figure 11).

Owns the Shadow Branch Decoder and the Shadow Branch Buffer and exposes
the two hooks the front-end uses:

* :meth:`on_ftq_entry` -- invoked when an FTQ entry's prefetch completes:
  head-decodes the entry line (when the entry was reached via a taken
  branch and starts mid-line) and tail-decodes the exit line (when the
  entry ends in a taken branch that leaves the line mid-way), inserting
  discovered branches into the SBB.  Decoding is off the critical path
  (Section 3.2 footnote), so it costs no pipeline cycles.
* :meth:`lookup` -- probed in parallel with the BTB.

When a ground-truth oracle is provided (the synthetic programs know their
instruction boundaries), insertions whose PC is not a real instruction
start are counted as *bogus* -- the Section 3.2.2 audit; the simulator
itself never consults the oracle for prediction.
"""

from __future__ import annotations

from typing import Callable

from repro.core.sbb import SBBEntry, ShadowBranchBuffer
from repro.core.sbd import ShadowBranch, ShadowBranchDecoder
from repro.frontend.config import SkiaConfig
from repro.frontend.stats import SimStats
from repro.isa.branch import BranchKind


class Skia:
    """Shadow branch decoding + buffering, wired for the simulator."""

    def __init__(self, image: bytes, base_address: int, config: SkiaConfig,
                 line_size: int = 64,
                 boundary_oracle: Callable[[int], bool] | None = None):
        if not config.enabled:
            raise ValueError("Skia constructed with a disabled config")
        self.config = config
        self.line_size = line_size
        self.sbd = ShadowBranchDecoder(image, base_address, config,
                                       line_size=line_size)
        self.sbb = ShadowBranchBuffer(config)
        self.boundary_oracle = boundary_oracle
        #: Optional repro.obs.EventTrace; attached by the engine.  Costs
        #: one None check per decode event when disabled.
        self.trace = None
        #: Optional repro.obs.TimelineRecorder; attached by the engine,
        #: which sets ``timeline.now`` to the entry's prefetch-completion
        #: cycle before calling :meth:`on_ftq_entry`.
        self.timeline = None

    # ------------------------------------------------------------------
    # Fill path (FTQ-entry prefetch completion)
    # ------------------------------------------------------------------

    def on_ftq_entry(self, entry_pc: int, entered_by_taken_branch: bool,
                     exit_pc: int | None, line_present: Callable[[int], bool],
                     stats: SimStats | None = None) -> None:
        """Run the SBD for one FTQ entry.

        ``entry_pc`` is the block start; ``exit_pc`` is the first byte
        after the block's taken branch (None when the block falls
        through).  ``line_present`` gates decoding on L1-I residency, as
        the paper requires.
        """
        if (self.config.decode_heads and entered_by_taken_branch
                and entry_pc % self.line_size != 0
                and line_present(entry_pc)):
            result = self.sbd.decode_head(entry_pc)
            if stats is not None:
                stats.sbd_head_decodes += 1
                if result.discarded:
                    stats.sbd_head_discarded += 1
            if self.trace is not None:
                self.trace.emit("sbd", side="head", pc=entry_pc,
                                branches=len(result.branches),
                                discarded=result.discarded,
                                valid_paths=result.valid_paths)
            if self.timeline is not None:
                self.timeline.span(
                    "sbd.head", f"0x{entry_pc:x}", self.timeline.now, 1.0,
                    branches=len(result.branches),
                    decoded=len(result.decoded_pcs),
                    valid_paths=result.valid_paths,
                    discarded=result.discarded)
            self._insert_all(result.branches, stats)

        if (self.config.decode_tails and exit_pc is not None
                and line_present(exit_pc - 1)):
            result = self.sbd.decode_tail(exit_pc)
            if stats is not None and (exit_pc % self.line_size) != 0:
                stats.sbd_tail_decodes += 1
            if self.trace is not None and (exit_pc % self.line_size) != 0:
                self.trace.emit("sbd", side="tail", pc=exit_pc,
                                branches=len(result.branches),
                                discarded=False)
            if (self.timeline is not None
                    and (exit_pc % self.line_size) != 0):
                self.timeline.span(
                    "sbd.tail", f"0x{exit_pc:x}", self.timeline.now, 1.0,
                    branches=len(result.branches),
                    decoded=len(result.decoded_pcs))
            self._insert_all(result.branches, stats)

    def _insert_all(self, branches: list[ShadowBranch],
                    stats: SimStats | None) -> None:
        for branch in branches:
            if branch.kind is BranchKind.RETURN:
                self.sbb.insert_return(branch.pc, self.line_size)
                if stats is not None:
                    stats.sbb_insertions_r += 1
            else:
                if branch.target is None:  # pragma: no cover - direct only
                    continue
                self.sbb.insert_unconditional(branch.pc, branch.target)
                if stats is not None:
                    stats.sbb_insertions_u += 1
            if (stats is not None and self.boundary_oracle is not None
                    and not self.boundary_oracle(branch.pc)):
                stats.sbb_bogus_insertions += 1

    # ------------------------------------------------------------------
    # Lookup path (parallel with the BTB)
    # ------------------------------------------------------------------

    def lookup(self, pc: int) -> tuple[str, SBBEntry] | None:
        return self.sbb.lookup(pc)

    def mark_retired(self, pc: int, which: str,
                     stats: SimStats | None = None) -> None:
        if self.sbb.mark_retired(pc, which) and stats is not None:
            stats.sbb_retired_marks += 1

    def register_metrics(self, registry) -> None:
        """Register the SBB halves and the SBD decode caches."""
        self.sbb.register_metrics(registry.scope("sbb"))
        self.sbd.register_metrics(registry.scope("sbd"))
